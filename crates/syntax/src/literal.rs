//! Required-literal extraction: the `LiteralSet` analysis.
//!
//! A [`LiteralSet`] for a SemRE `r` is a small set of byte strings such
//! that **every** word of `⟦skel(r)⟧` — and therefore, since
//! `⟦r⟧ ⊆ ⟦skel(r)⟧`, every word of `⟦r⟧` — contains at least one of them
//! as a contiguous substring.  The prescan layer in `semre-automata`
//! compiles such a set into a SWAR multi-literal searcher and skips the
//! skeleton DFA (let alone the oracle machinery) on every line that
//! contains none of the required literals.
//!
//! The analysis is a single bottom-up pass over the AST.  Alongside the
//! requirement set it tracks, where feasible, the *exact* (finite, small)
//! language of a subexpression, which is what lets multi-byte literals
//! like `"Subject: "` or `"https://"` be assembled across concatenations
//! and alternations.  All sets are capped; when a cap is exceeded the
//! analysis degrades to "no requirement known", which is always sound —
//! an empty [`LiteralSet`] simply filters nothing.
//!
//! # Examples
//!
//! ```
//! use semre_syntax::{parse, LiteralSet};
//!
//! let r = parse(r"Subject: .*(?<Medicine name>: [a-z]+).*").unwrap();
//! let lits = LiteralSet::required(&r);
//! assert_eq!(lits.alts(), [b"Subject: ".to_vec()]);
//!
//! // Every matching line must contain one of the required literals.
//! assert!(lits.could_match(b"fwd: Subject: cheap tramadol"));
//! assert!(!lits.could_match(b"no mail header here"));
//!
//! // Nullable patterns admit the empty word, so nothing is required.
//! assert!(LiteralSet::required(&parse("(abc)*").unwrap()).is_empty());
//! ```

use crate::ast::Semre;

/// Maximum alternatives in a final requirement set.  More alternatives
/// than this would make the prescan slower than the DFA it guards.
const MAX_ALTS: usize = 8;
/// Maximum strings tracked in an *exact* language set during the pass.
const MAX_EXACT: usize = 16;
/// Maximum length of any tracked literal.
const MAX_LIT_LEN: usize = 24;
/// Character classes wider than this stop being enumerated as literals.
const MAX_CLASS_BYTES: usize = 4;

/// A set of literals of which every matching word must contain at least
/// one.  An empty set means "no requirement known" and filters nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiteralSet {
    alts: Vec<Vec<u8>>,
}

impl LiteralSet {
    /// The empty (non-filtering) set.
    pub fn none() -> LiteralSet {
        LiteralSet::default()
    }

    /// Extracts required literals from `r` (via its skeleton semantics:
    /// oracle refinements only shrink the language, so a literal required
    /// by `skel(r)` is required by `r`).
    pub fn required(r: &Semre) -> LiteralSet {
        let facts = analyze(r);
        let alts = match required_of(&facts) {
            Some(alts) if !alts.is_empty() => reduce(alts),
            _ => Vec::new(),
        };
        LiteralSet { alts }
    }

    /// The literal alternatives.  Never contains an empty string.
    pub fn alts(&self) -> &[Vec<u8>] {
        &self.alts
    }

    /// Whether no requirement is known (the set filters nothing).
    pub fn is_empty(&self) -> bool {
        self.alts.is_empty()
    }

    /// Length of the shortest required literal, or 0 when the set is
    /// empty.
    pub fn min_len(&self) -> usize {
        self.alts.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Reference implementation of the prescan question: does `haystack`
    /// contain one of the required literals (vacuously true when the set
    /// is empty)?  The production path uses the SWAR searcher in
    /// `semre-automata`; this naive scan exists for tests and tools.
    pub fn could_match(&self, haystack: &[u8]) -> bool {
        self.is_empty()
            || self
                .alts
                .iter()
                .any(|lit| haystack.windows(lit.len()).any(|w| w == &lit[..]))
    }
}

/// The shortest length of any word of `⟦skel(r)⟧` — inputs shorter than
/// this cannot match.  `⊥` (the empty language) reports a huge sentinel;
/// callers only compare input lengths against the result.
///
/// ```
/// use semre_syntax::{literal_min_len, parse};
///
/// assert_eq!(literal_min_len(&parse("abc(de)?").unwrap()), 3);
/// assert_eq!(literal_min_len(&parse("x*").unwrap()), 0);
/// ```
pub fn literal_min_len(r: &Semre) -> usize {
    match r {
        Semre::Bot => usize::MAX / 2,
        Semre::Eps => 0,
        Semre::Class(_) => 1,
        Semre::Union(a, b) => literal_min_len(a).min(literal_min_len(b)),
        Semre::Concat(a, b) => literal_min_len(a).saturating_add(literal_min_len(b)),
        Semre::Star(_) => 0,
        Semre::Query(a, _) => literal_min_len(a),
    }
}

/// Per-node facts of the bottom-up pass.
#[derive(Clone, Debug)]
struct Facts {
    /// `Some(set)`: the skeleton language of the node is *exactly* this
    /// finite set of strings (all within the caps).
    exact: Option<Vec<Vec<u8>>>,
    /// Strings of which every match contains at least one; empty when no
    /// requirement is known.
    req: Vec<Vec<u8>>,
}

impl Facts {
    fn unknown() -> Facts {
        Facts {
            exact: None,
            req: Vec::new(),
        }
    }
}

fn analyze(r: &Semre) -> Facts {
    match r {
        // ⊥ never matches; claiming nothing is sound and keeps the
        // downstream prescan from having to model the empty language.
        Semre::Bot => Facts::unknown(),
        Semre::Eps => Facts {
            exact: Some(vec![Vec::new()]),
            req: Vec::new(),
        },
        Semre::Class(c) => {
            let n = c.len();
            if n > 0 && n <= MAX_CLASS_BYTES {
                let bytes: Vec<Vec<u8>> = c.iter().map(|b| vec![b]).collect();
                Facts {
                    exact: Some(bytes.clone()),
                    req: bytes,
                }
            } else {
                Facts::unknown()
            }
        }
        Semre::Union(a, b) => {
            let fa = analyze(a);
            let fb = analyze(b);
            let exact = match (&fa.exact, &fb.exact) {
                (Some(x), Some(y)) if x.len() + y.len() <= MAX_EXACT => {
                    let mut all = x.clone();
                    all.extend(y.iter().cloned());
                    all.dedup();
                    Some(all)
                }
                _ => None,
            };
            // A literal is required by the union only when each branch
            // has its own requirement: the combined set covers both.
            let req = match (required_of(&fa), required_of(&fb)) {
                (Some(x), Some(y)) => {
                    let mut all = x;
                    all.extend(y);
                    all.sort();
                    all.dedup();
                    if all.len() <= MAX_ALTS {
                        all
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            };
            Facts { exact, req }
        }
        Semre::Concat(..) => {
            // The parser left-nests concatenation, so treat the whole
            // chain as a sequence: every match factors as w₁·w₂·…·wₙ,
            // and a requirement of any factor — or any literal assembled
            // from a *run* of adjacent exact factors — carries over.
            let mut factors: Vec<&Semre> = Vec::new();
            flatten_concat(r, &mut factors);
            let facts: Vec<Facts> = factors.iter().map(|f| analyze(f)).collect();

            let mut exact: Option<Vec<Vec<u8>>> = Some(vec![Vec::new()]);
            for f in &facts {
                exact = product(exact.as_deref(), f.exact.as_deref());
            }

            let mut best: Option<Vec<Vec<u8>>> = None;
            let consider = |candidate: Option<Vec<Vec<u8>>>, best: &mut Option<Vec<Vec<u8>>>| {
                if let Some(cand) = candidate.and_then(usable_requirement) {
                    match best {
                        Some(b) if !better(&cand, b) => {}
                        _ => *best = Some(cand),
                    }
                }
            };
            // Maximal runs of adjacent exact factors, assembled by cross
            // product; a non-exact factor (or a cap overflow) closes the
            // current run.
            let mut run: Vec<Vec<u8>> = vec![Vec::new()];
            for f in &facts {
                match &f.exact {
                    Some(e) => match product(Some(&run), Some(e)) {
                        Some(p) => run = p,
                        None => {
                            consider(Some(std::mem::replace(&mut run, e.clone())), &mut best);
                        }
                    },
                    None => {
                        consider(Some(std::mem::take(&mut run)), &mut best);
                        run = vec![Vec::new()];
                        consider(required_of(f), &mut best);
                    }
                }
            }
            consider(Some(run), &mut best);

            Facts {
                exact,
                req: best.unwrap_or_default(),
            }
        }
        // Zero iterations are allowed, so nothing is required; the exact
        // language is almost never small enough to track.
        Semre::Star(_) => Facts::unknown(),
        // ⟦r ∧ ⟨q⟩⟧ ⊆ ⟦r⟧: everything required of `r` stays required.
        Semre::Query(a, _) => analyze(a),
    }
}

/// Flattens a (left- or right-nested) concatenation chain into its
/// factors, in order.
fn flatten_concat<'r>(r: &'r Semre, out: &mut Vec<&'r Semre>) {
    match r {
        Semre::Concat(a, b) => {
            flatten_concat(a, out);
            flatten_concat(b, out);
        }
        other => out.push(other),
    }
}

/// Cross product of two exact sets, `None` when either side is unknown
/// or a cap (count, literal length) is exceeded.
fn product(a: Option<&[Vec<u8>]>, b: Option<&[Vec<u8>]>) -> Option<Vec<Vec<u8>>> {
    let (a, b) = (a?, b?);
    if a.len().checked_mul(b.len())? > MAX_EXACT {
        return None;
    }
    let mut all = Vec::with_capacity(a.len() * b.len());
    for wa in a {
        for wb in b {
            if wa.len() + wb.len() > MAX_LIT_LEN {
                return None;
            }
            let mut w = wa.clone();
            w.extend_from_slice(wb);
            all.push(w);
        }
    }
    all.dedup();
    Some(all)
}

/// Validates a raw candidate set as a usable requirement: non-empty, at
/// most [`MAX_ALTS`] alternatives, and no empty string (which would make
/// the requirement vacuous).
fn usable_requirement(set: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    if set.is_empty() || set.len() > MAX_ALTS || set.iter().any(Vec::is_empty) {
        None
    } else {
        Some(set)
    }
}

/// The usable requirement set of a node: its `req` when present,
/// otherwise its exact language (every match *is* — hence contains — one
/// of the strings).
fn required_of(facts: &Facts) -> Option<Vec<Vec<u8>>> {
    let set = if !facts.req.is_empty() {
        facts.req.clone()
    } else {
        facts.exact.clone()?
    };
    usable_requirement(set)
}

/// Whether requirement set `x` filters better than `y`: a longer
/// shortest literal wins (SWAR verification gets cheaper and false
/// positives rarer); ties go to the smaller set.
fn better(x: &[Vec<u8>], y: &[Vec<u8>]) -> bool {
    let min_x = x.iter().map(Vec::len).min().unwrap_or(0);
    let min_y = y.iter().map(Vec::len).min().unwrap_or(0);
    min_x > min_y || (min_x == min_y && x.len() < y.len())
}

/// Final clean-up: drop any literal that contains another one of the set
/// as a substring (containing the superstring implies containing the
/// substring, so the smaller set is an equivalent requirement).
fn reduce(mut alts: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    alts.sort();
    alts.dedup();
    let keep: Vec<bool> = alts
        .iter()
        .map(|a| {
            !alts
                .iter()
                .any(|b| b.len() < a.len() && a.windows(b.len()).any(|w| w == &b[..]))
        })
        .collect();
    let mut it = keep.iter();
    alts.retain(|_| *it.next().unwrap());
    alts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::parser::parse;
    use crate::skeleton::skeleton;

    fn req(pattern: &str) -> Vec<Vec<u8>> {
        LiteralSet::required(&parse(pattern).unwrap())
            .alts()
            .to_vec()
    }

    fn lits(strings: &[&str]) -> Vec<Vec<u8>> {
        strings.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn literals_survive_padding_and_queries() {
        assert_eq!(req("abc"), lits(&["abc"]));
        assert_eq!(req(".*abc.*"), lits(&["abc"]));
        assert_eq!(
            req("Subject: .*(?<Medicine name>: [a-z]+).*"),
            lits(&["Subject: "])
        );
    }

    #[test]
    fn alternations_combine_branch_requirements() {
        let mut got = req("(http(s)?://|www[.])x");
        got.sort();
        // The union's exact language stays small enough for the trailing
        // `x` to be folded into every alternative.
        assert_eq!(got, lits(&["http://x", "https://x", "www.x"]));
        // After a `.*` the union's own branch requirements still combine.
        let mut padded = req(".*(http(s)?://|www[.])[a-z]+");
        padded.sort();
        assert_eq!(padded, lits(&["http://", "https://", "www."]));
        // One branch without a requirement poisons the union.
        assert_eq!(req("(abc|[a-z]+)"), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn nullable_patterns_require_nothing() {
        assert!(req("(abc)*").is_empty());
        assert!(req("(abc)?").is_empty());
        assert_eq!(req("(abc)+"), lits(&["abc"]));
    }

    #[test]
    fn small_classes_enumerate_large_ones_do_not() {
        let mut got = req("[Tt]rue");
        got.sort();
        assert_eq!(got, lits(&["True", "true"]));
        assert!(req("[a-z]+").is_empty());
        // Concatenation picks the literal factor next to a wide class.
        assert_eq!(req("[a-z]+@[a-z]+"), lits(&["@"]));
    }

    #[test]
    fn superstrings_are_reduced_away() {
        let reduced = reduce(lits(&["abc", "ab", "xyz"]));
        assert_eq!(reduced, lits(&["ab", "xyz"]));
    }

    #[test]
    fn min_len_analysis() {
        assert_eq!(literal_min_len(&parse("abc(de)?").unwrap()), 3);
        assert_eq!(literal_min_len(&parse("a|bc").unwrap()), 1);
        assert_eq!(literal_min_len(&parse(".*").unwrap()), 0);
        // "Subject: " is 9 bytes and the refined `.+` adds one more.
        assert_eq!(
            literal_min_len(&parse("Subject: .*(?<q>: .+).*").unwrap()),
            10,
        );
        assert!(literal_min_len(&Semre::Bot) > 1_000_000);
    }

    #[test]
    fn requirement_is_sound_on_benchmark_skeletons() {
        // Every literal-bearing benchmark skeleton: brute-force check on
        // sample members that the requirement really is required.
        for (name, r) in examples::table1_semres() {
            let padded = Semre::padded(r);
            let set = LiteralSet::required(&skeleton(&padded));
            for alt in set.alts() {
                assert!(!alt.is_empty(), "{name}: empty literal extracted");
                assert!(alt.len() <= MAX_LIT_LEN);
            }
        }
        // Spot-check spam,1: "Subject: " is required.
        let spam = Semre::padded(examples::r_spam1());
        let set = LiteralSet::required(&skeleton(&spam));
        assert_eq!(set.alts(), lits(&["Subject: "]));
        assert_eq!(set.min_len(), 9);
        assert!(set.could_match(b"xx Subject: hello"));
        assert!(!set.could_match(b"Subject hello"));
    }

    #[test]
    fn empty_set_filters_nothing() {
        let none = LiteralSet::none();
        assert!(none.is_empty());
        assert_eq!(none.min_len(), 0);
        assert!(none.could_match(b"anything"));
        assert!(none.could_match(b""));
    }
}
