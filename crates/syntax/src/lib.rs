//! Syntax of semantic regular expressions (SemREs).
//!
//! A *semantic regular expression* (Chen et al., OOPSLA 2023; Huang et al.,
//! PLDI 2025) extends classical regular expressions with an oracle
//! refinement `r ∧ ⟨q⟩`: the set of strings that match `r` *and* are
//! accepted by the external oracle when asked the question `q`.  This crate
//! provides:
//!
//! * [`Semre`] — the AST (Equation 1 of the paper), with constructors for
//!   all the standard syntactic sugar (`r?`, `r⁺`, `r{i,j}`, string
//!   literals, the `⟨q⟩` and `[q]` shorthands);
//! * [`CharClass`] — byte-level character classes forming an effective
//!   Boolean algebra over the alphabet `Σ` of 256 byte values (Note 2.2);
//! * [`parse`] — a parser for a POSIX-flavoured concrete syntax extended
//!   with `(?<query>: r)` refinements, and a matching pretty printer
//!   (`Display`);
//! * [`skeleton`] / [`eliminate_bot`] — the structural transformations the
//!   matching algorithm relies on;
//! * [`LiteralSet`] / [`literal_min_len`] — the required-literal analysis
//!   feeding the prescan layer in `semre-automata`;
//! * [`examples`] — the paper's nine benchmark SemREs and worked examples.
//!
//! # Example
//!
//! ```
//! use semre_syntax::{parse, skeleton, Semre};
//!
//! // Search for lines mentioning a medicine name surrounded by spaces
//! // (Example 2.8 of the paper).
//! let r = parse(r"Subject: .* (?<Medicine name>: [a-zA-Z]+) .*").unwrap();
//! assert_eq!(r.query_count(), 1);
//! assert!(!r.has_nested_queries());
//!
//! // Its skeleton is a classical regular expression.
//! assert!(skeleton(&r).is_classical());
//!
//! // The same expression can be built programmatically.
//! let again = Semre::concat(Semre::literal("Subject: "), Semre::any_star());
//! assert!(again.is_classical());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod charclass;
mod display;
pub mod examples;
mod literal;
mod parser;
mod skeleton;

pub use ast::{QueryName, Semre};
pub use charclass::{Bytes, CharClass};
pub use literal::{literal_min_len, LiteralSet};
pub use parser::{parse, ParseSemreError};
pub use skeleton::{eliminate_bot, skeleton};
