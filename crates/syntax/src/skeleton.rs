//! Skeleton extraction and ⊥-elimination.
//!
//! The *skeleton* `skel(r)` of a SemRE `r` is the classical regular
//! expression obtained by stripping away all oracle refinements
//! (Section 3.5 of the paper).  Since `⟦r⟧ ⊆ ⟦skel(r)⟧`, the skeleton is a
//! sound over-approximation which the matcher uses as a zero-oracle-cost
//! prefilter, and its (un)ambiguity governs the tightest complexity bound
//! of Theorem 3.9.
//!
//! Assumption 3.3 of the paper requires every SNFA state to be both
//! reachable and co-reachable, which holds automatically when the SemRE
//! contains no `⊥` sub-expressions.  [`eliminate_bot`] implements the
//! rewrite rules alluded to there.

use crate::ast::Semre;

/// Strips every oracle refinement from the expression, producing the
/// classical regular expression `skel(r)`.
///
/// # Examples
///
/// ```
/// use semre_syntax::{skeleton, Semre};
///
/// let r = Semre::padded(Semre::oracle("Politician"));
/// let s = skeleton(&r);
/// assert!(s.is_classical());
/// assert_eq!(s, Semre::padded(Semre::any_star()));
/// ```
pub fn skeleton(r: &Semre) -> Semre {
    match r {
        Semre::Bot => Semre::Bot,
        Semre::Eps => Semre::Eps,
        Semre::Class(c) => Semre::Class(*c),
        Semre::Union(a, b) => Semre::Union(Box::new(skeleton(a)), Box::new(skeleton(b))),
        Semre::Concat(a, b) => Semre::Concat(Box::new(skeleton(a)), Box::new(skeleton(b))),
        Semre::Star(a) => Semre::Star(Box::new(skeleton(a))),
        Semre::Query(a, _) => skeleton(a),
    }
}

/// Rewrites the expression so that `⊥` occurs either nowhere, or only as
/// the top-level expression (in which case the language is empty).
///
/// The rewrite rules are semantics preserving:
/// `⊥ + r = r`, `⊥ · r = r · ⊥ = ⊥`, `⊥* = ε`, `⊥ ∧ ⟨q⟩ = ⊥`.
///
/// # Examples
///
/// ```
/// use semre_syntax::{eliminate_bot, parse, Semre};
///
/// let r = parse("a([]|b)c").unwrap();
/// assert_eq!(eliminate_bot(&r), parse("abc").unwrap());
/// let dead = parse("a[]c").unwrap();
/// assert_eq!(eliminate_bot(&dead), Semre::Bot);
/// ```
pub fn eliminate_bot(r: &Semre) -> Semre {
    match r {
        Semre::Bot => Semre::Bot,
        Semre::Eps => Semre::Eps,
        Semre::Class(c) => Semre::class(*c),
        Semre::Union(a, b) => match (eliminate_bot(a), eliminate_bot(b)) {
            (Semre::Bot, r) | (r, Semre::Bot) => r,
            (a, b) => Semre::Union(Box::new(a), Box::new(b)),
        },
        Semre::Concat(a, b) => match (eliminate_bot(a), eliminate_bot(b)) {
            (Semre::Bot, _) | (_, Semre::Bot) => Semre::Bot,
            (a, b) => Semre::Concat(Box::new(a), Box::new(b)),
        },
        Semre::Star(a) => match eliminate_bot(a) {
            Semre::Bot => Semre::Eps,
            a => Semre::Star(Box::new(a)),
        },
        Semre::Query(a, q) => match eliminate_bot(a) {
            Semre::Bot => Semre::Bot,
            a => Semre::Query(Box::new(a), q.clone()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn skeleton_strips_queries() {
        let r = parse("(?<Q>: a(?<P>: b)c)d").unwrap();
        let s = skeleton(&r);
        assert!(s.is_classical());
        assert_eq!(s, parse("abcd").unwrap());
    }

    #[test]
    fn skeleton_of_classical_is_identity() {
        let r = parse("a(b|c)*d{2,4}").unwrap();
        assert_eq!(skeleton(&r), r);
    }

    #[test]
    fn skeleton_preserves_structure_elsewhere() {
        let r = parse("x|(?<Q>: y)*").unwrap();
        assert_eq!(skeleton(&r), parse("x|y*").unwrap());
    }

    #[test]
    fn bot_elimination_rules() {
        assert_eq!(eliminate_bot(&parse("[]|a").unwrap()), parse("a").unwrap());
        assert_eq!(eliminate_bot(&parse("a|[]").unwrap()), parse("a").unwrap());
        assert_eq!(eliminate_bot(&parse("[]a").unwrap()), Semre::Bot);
        assert_eq!(eliminate_bot(&parse("[]*").unwrap()), Semre::Eps);
        assert_eq!(eliminate_bot(&parse("(?<Q>: [])").unwrap()), Semre::Bot);
        assert_eq!(
            eliminate_bot(&parse("([]|a)([]*|b)").unwrap()),
            parse("a(()|b)").unwrap()
        );
    }

    #[test]
    fn bot_free_results_contain_no_bot() {
        let inputs = ["a([]|b)*c", "[]|[]|x", "(?<Q>: a|[])"];
        for s in inputs {
            let cleaned = eliminate_bot(&parse(s).unwrap());
            assert!(
                cleaned == Semre::Bot || !cleaned.contains_bot(),
                "elimination left an inner ⊥ in {cleaned}"
            );
        }
    }
}
