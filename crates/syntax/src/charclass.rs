//! Byte-level character classes.
//!
//! The paper (Note 2.2) fixes the alphabet `Σ` to be the 256 possible byte
//! values of a UTF-8 encoded stream and supports three kinds of character
//! classes: the wildcard `Σ` (written `.`), ranges `[a-b]`, and negated
//! ranges `[^a-b]`.  A [`CharClass`] is the effective Boolean algebra over
//! these: an arbitrary subset of the 256 byte values, stored as a 256-bit
//! set.  All Boolean operations are supported, so richer symbolic classes
//! (unions of ranges, complements, intersections) can be expressed as well.

use std::fmt;

/// A set of byte values, i.e. a subset of the alphabet `Σ = {0, …, 255}`.
///
/// `CharClass` is a small value type (32 bytes) implementing the full
/// Boolean algebra of byte sets.  It is the guard placed on character
/// transitions of the semantic NFA and the payload of literal leaves of the
/// SemRE AST.
///
/// # Examples
///
/// ```
/// use semre_syntax::CharClass;
///
/// let digits = CharClass::range(b'0', b'9');
/// let lower = CharClass::range(b'a', b'z');
/// let alnum = digits.union(&lower);
/// assert!(alnum.contains(b'7'));
/// assert!(alnum.contains(b'k'));
/// assert!(!alnum.contains(b'K'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CharClass {
    bits: [u64; 4],
}

impl CharClass {
    /// The empty class: matched by no byte.
    pub const fn empty() -> Self {
        CharClass { bits: [0; 4] }
    }

    /// The full class `Σ` (the wildcard `.`): matched by every byte.
    pub const fn any() -> Self {
        CharClass {
            bits: [u64::MAX; 4],
        }
    }

    /// A class containing exactly one byte.
    pub fn single(b: u8) -> Self {
        let mut c = CharClass::empty();
        c.insert(b);
        c
    }

    /// The inclusive range `[lo-hi]`.  An empty class is returned when
    /// `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = CharClass::empty();
        if lo <= hi {
            for b in lo..=hi {
                c.insert(b);
            }
        }
        c
    }

    /// Builds a class from an explicit set of bytes.
    pub fn from_bytes<I: IntoIterator<Item = u8>>(bytes: I) -> Self {
        let mut c = CharClass::empty();
        for b in bytes {
            c.insert(b);
        }
        c
    }

    /// ASCII decimal digits `[0-9]` (the paper's `Σ_d`).
    pub fn digit() -> Self {
        CharClass::range(b'0', b'9')
    }

    /// ASCII letters `[a-zA-Z]` (the paper's `Σ_a`).
    pub fn alpha() -> Self {
        CharClass::range(b'a', b'z').union(&CharClass::range(b'A', b'Z'))
    }

    /// ASCII letters and digits.
    pub fn alnum() -> Self {
        CharClass::alpha().union(&CharClass::digit())
    }

    /// ASCII whitespace (space, tab, CR, LF, form feed, vertical tab).
    pub fn whitespace() -> Self {
        CharClass::from_bytes([b' ', b'\t', b'\r', b'\n', 0x0c, 0x0b])
    }

    /// Adds a byte to the class.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes a byte from the class.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Tests whether the class contains the byte `b`.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Number of bytes in the class.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Whether the class is the full alphabet.
    pub fn is_any(&self) -> bool {
        self.bits.iter().all(|&w| w == u64::MAX)
    }

    /// Set union.
    pub fn union(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        CharClass { bits }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        CharClass { bits }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &CharClass) -> CharClass {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= !*b;
        }
        CharClass { bits }
    }

    /// Set complement with respect to the full alphabet `Σ`.
    pub fn complement(&self) -> CharClass {
        let mut bits = self.bits;
        for a in bits.iter_mut() {
            *a = !*a;
        }
        CharClass { bits }
    }

    /// Whether the two classes share at least one byte.
    pub fn overlaps(&self, other: &CharClass) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &CharClass) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterates over the bytes in the class in increasing order.
    pub fn iter(&self) -> Bytes {
        Bytes {
            class: *self,
            next: 0,
            done: false,
        }
    }

    /// The smallest byte in the class, if non-empty.
    pub fn min_byte(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Returns the class as a sorted list of maximal inclusive ranges.
    ///
    /// Used by the pretty printer and by tests; e.g. `[a-cx]` becomes
    /// `[(b'a', b'c'), (b'x', b'x')]`.
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in self.iter() {
            match cur {
                Some((lo, hi)) if hi as u16 + 1 == b as u16 => cur = Some((lo, b)),
                Some(r) => {
                    out.push(r);
                    cur = Some((b, b));
                }
                None => cur = Some((b, b)),
            }
        }
        if let Some(r) = cur {
            out.push(r);
        }
        out
    }
}

impl Default for CharClass {
    fn default() -> Self {
        CharClass::empty()
    }
}

impl FromIterator<u8> for CharClass {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        CharClass::from_bytes(iter)
    }
}

impl Extend<u8> for CharClass {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        for b in iter {
            self.insert(b);
        }
    }
}

/// Iterator over the bytes of a [`CharClass`], produced by
/// [`CharClass::iter`].
#[derive(Clone, Debug)]
pub struct Bytes {
    class: CharClass,
    next: u16,
    done: bool,
}

impl Iterator for Bytes {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.done {
            return None;
        }
        while self.next < 256 {
            let b = self.next as u8;
            self.next += 1;
            if self.class.contains(b) {
                return Some(b);
            }
        }
        self.done = true;
        None
    }
}

fn display_byte(b: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match b {
        b'\n' => write!(f, "\\n"),
        b'\t' => write!(f, "\\t"),
        b'\r' => write!(f, "\\r"),
        b'\\' | b'-' | b']' | b'[' | b'^' => write!(f, "\\{}", b as char),
        0x20..=0x7e => write!(f, "{}", b as char),
        _ => write!(f, "\\x{:02x}", b),
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, ".");
        }
        if self.len() == 1 {
            // Single characters outside a bracket expression still need
            // their own escaping rules, but rendering them inside brackets
            // keeps the printer simple and unambiguous.
            write!(f, "[")?;
            display_byte(self.min_byte().expect("non-empty"), f)?;
            return write!(f, "]");
        }
        // Prefer the negated form when it is much smaller.
        let (neg, class) = if self.len() > 200 {
            (true, self.complement())
        } else {
            (false, *self)
        };
        write!(f, "[")?;
        if neg {
            write!(f, "^")?;
        }
        for (lo, hi) in class.ranges() {
            if lo == hi {
                display_byte(lo, f)?;
            } else if hi == lo + 1 {
                display_byte(lo, f)?;
                display_byte(hi, f)?;
            } else {
                display_byte(lo, f)?;
                write!(f, "-")?;
                display_byte(hi, f)?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharClass({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_any() {
        assert_eq!(CharClass::empty().len(), 0);
        assert!(CharClass::empty().is_empty());
        assert_eq!(CharClass::any().len(), 256);
        assert!(CharClass::any().is_any());
        assert!(!CharClass::any().is_empty());
    }

    #[test]
    fn single_and_contains() {
        let c = CharClass::single(b'x');
        assert!(c.contains(b'x'));
        assert!(!c.contains(b'y'));
        assert_eq!(c.len(), 1);
        assert_eq!(c.min_byte(), Some(b'x'));
    }

    #[test]
    fn range_boundaries() {
        let c = CharClass::range(b'a', b'f');
        assert!(c.contains(b'a'));
        assert!(c.contains(b'f'));
        assert!(!c.contains(b'g'));
        assert!(!c.contains(b'`'));
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn inverted_range_is_empty() {
        assert!(CharClass::range(b'z', b'a').is_empty());
    }

    #[test]
    fn boolean_algebra_laws() {
        let a = CharClass::range(b'a', b'm');
        let b = CharClass::range(b'h', b'z');
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert_eq!(u.len(), 26);
        assert_eq!(i.len(), 6);
        // De Morgan
        assert_eq!(u.complement(), a.complement().intersect(&b.complement()));
        assert_eq!(i.complement(), a.complement().union(&b.complement()));
        // difference
        assert_eq!(a.difference(&b).len(), 7);
        assert!(a.difference(&b).is_subset(&a));
        assert!(!a.difference(&b).overlaps(&b));
    }

    #[test]
    fn complement_roundtrip() {
        let c = CharClass::from_bytes([0, 1, 2, 127, 128, 255]);
        assert_eq!(c.complement().complement(), c);
        assert_eq!(c.complement().len(), 250);
        assert!(c.complement().contains(b'a'));
        assert!(!c.complement().contains(0));
        assert!(!c.complement().contains(255));
    }

    #[test]
    fn insert_remove() {
        let mut c = CharClass::empty();
        c.insert(200);
        assert!(c.contains(200));
        c.remove(200);
        assert!(!c.contains(200));
        assert!(c.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let c = CharClass::from_bytes([b'z', b'a', b'm']);
        let got: Vec<u8> = c.iter().collect();
        assert_eq!(got, vec![b'a', b'm', b'z']);
    }

    #[test]
    fn ranges_coalesce() {
        let c = CharClass::from_bytes([b'a', b'b', b'c', b'x', b'z']);
        assert_eq!(c.ranges(), vec![(b'a', b'c'), (b'x', b'x'), (b'z', b'z')]);
        assert_eq!(CharClass::empty().ranges(), vec![]);
        assert_eq!(CharClass::any().ranges(), vec![(0, 255)]);
    }

    #[test]
    fn named_classes() {
        assert_eq!(CharClass::digit().len(), 10);
        assert_eq!(CharClass::alpha().len(), 52);
        assert_eq!(CharClass::alnum().len(), 62);
        assert!(CharClass::whitespace().contains(b' '));
        assert!(CharClass::whitespace().contains(b'\t'));
        assert!(!CharClass::whitespace().contains(b'x'));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CharClass::any().to_string(), ".");
        assert_eq!(CharClass::single(b'a').to_string(), "[a]");
        assert_eq!(CharClass::range(b'a', b'c').to_string(), "[a-c]");
        // Large classes display in negated form.
        let not_quote = CharClass::single(b'"').complement();
        assert_eq!(not_quote.to_string(), "[^\"]");
    }

    #[test]
    fn from_iterator_and_extend() {
        let c: CharClass = (b'0'..=b'3').collect();
        assert_eq!(c.len(), 4);
        let mut d = CharClass::empty();
        d.extend([b'x', b'y']);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn subset_relation() {
        let small = CharClass::range(b'b', b'd');
        let big = CharClass::range(b'a', b'z');
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(CharClass::empty().is_subset(&small));
        assert!(big.is_subset(&CharClass::any()));
    }
}
