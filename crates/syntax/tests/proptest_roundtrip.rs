//! Property tests for the SemRE syntax layer: printing and re-parsing is
//! the identity, and the structural analyses are consistent with each
//! other.
//!
//! The random SemREs are produced by a small seeded generator (the
//! workspace builds without external crates, so `proptest` is not
//! available); with a fixed seed the suite is fully deterministic while
//! still sweeping a few hundred structurally diverse expressions per
//! property.

use semre_syntax::{eliminate_bot, parse, skeleton, CharClass, Semre};
use semre_workloads::rng::StdRng as Rng;

/// A uniform draw from `[0, n)`.
fn below(rng: &mut Rng, n: usize) -> usize {
    rng.gen_range(0..n)
}

const LITERALS: &[&str] = &["a", "ab", "xyz", "hello", "qrs", "zz"];
const QUERY_NAMES: &[&str] = &["City q", "Medicine nameq", "palq", "Eq", "nested oneq"];

/// Random SemREs built through the public constructors (so that the
/// printer/parser pair is exercised on exactly the shapes users build).
fn random_semre(rng: &mut Rng, depth: u32) -> Semre {
    if depth == 0 || below(rng, 3) == 0 {
        return match below(rng, 7) {
            0 => Semre::eps(),
            1 => Semre::bot(),
            2 => Semre::any(),
            3 => Semre::byte(b'a' + below(rng, 3) as u8),
            4 => Semre::class(CharClass::range(b'0', b'9')),
            5 => Semre::class(CharClass::single(b'z').complement()),
            _ => Semre::literal(LITERALS[below(rng, LITERALS.len())]),
        };
    }
    match below(rng, 6) {
        0 => Semre::concat(random_semre(rng, depth - 1), random_semre(rng, depth - 1)),
        1 => Semre::union(random_semre(rng, depth - 1), random_semre(rng, depth - 1)),
        2 => Semre::star(random_semre(rng, depth - 1)),
        3 => Semre::plus(random_semre(rng, depth - 1)),
        4 => Semre::opt(random_semre(rng, depth - 1)),
        _ => {
            let name = QUERY_NAMES[below(rng, QUERY_NAMES.len())];
            Semre::query(random_semre(rng, depth - 1), name.to_owned())
        }
    }
}

fn cases(seed: u64, count: usize) -> impl Iterator<Item = Semre> {
    let mut rng = Rng::seed_from_u64(seed);
    std::iter::repeat_with(move || random_semre(&mut rng, 5)).take(count)
}

/// Printing then parsing gives back a structurally identical AST.
#[test]
fn print_parse_roundtrip() {
    for r in cases(0xC0FFEE, 300) {
        let printed = r.to_string();
        let reparsed = parse(&printed);
        assert!(
            reparsed.is_ok(),
            "printed form {printed:?} does not parse: {:?}",
            reparsed.err()
        );
        assert_eq!(reparsed.unwrap(), r, "round-trip mismatch for {printed}");
    }
}

/// The skeleton is classical, no larger than the original, and idempotent.
#[test]
fn skeleton_properties() {
    for r in cases(0xBEEF, 300) {
        let s = skeleton(&r);
        assert!(s.is_classical());
        assert!(s.size() <= r.size());
        assert_eq!(skeleton(&s), s);
        // Skeleton nullability is preserved by definition.
        assert_eq!(r.skeleton_nullable(), s.skeleton_nullable());
    }
}

/// ⊥-elimination removes every inner ⊥ and never changes nesting beyond
/// removal.
#[test]
fn bot_elimination_properties() {
    for r in cases(0xDEAD, 300) {
        let cleaned = eliminate_bot(&r);
        assert!(cleaned == Semre::Bot || !cleaned.contains_bot());
        assert!(cleaned.size() <= r.size());
        assert!(cleaned.nesting_depth() <= r.nesting_depth());
        // Idempotent.
        assert_eq!(eliminate_bot(&cleaned), cleaned);
    }
}

/// Size and query counting are consistent: a SemRE has at least as many
/// nodes as refinements, and stripping queries removes exactly the
/// refinement nodes.
#[test]
fn size_accounting() {
    for r in cases(0xF00D, 300) {
        assert!(r.size() >= r.query_count());
        assert_eq!(skeleton(&r).size(), r.size() - r.query_count());
        assert_eq!(r.query_count() == 0, r.is_classical());
        assert!(r.queries().len() <= r.query_count());
    }
}
