//! Property tests for the SemRE syntax layer: printing and re-parsing is
//! the identity, and the structural analyses are consistent with each
//! other.

use proptest::prelude::*;

use semre_syntax::{eliminate_bot, parse, skeleton, CharClass, Semre};

/// Random SemREs built through the public constructors (so that the
/// printer/parser pair is exercised on exactly the shapes users build).
fn semre_strategy() -> impl Strategy<Value = Semre> {
    let leaf = prop_oneof![
        Just(Semre::eps()),
        Just(Semre::bot()),
        Just(Semre::any()),
        (0u8..3).prop_map(|b| Semre::byte(b'a' + b)),
        Just(Semre::class(CharClass::range(b'0', b'9'))),
        Just(Semre::class(CharClass::single(b'z').complement())),
        "[a-z]{1,6}".prop_map(Semre::literal),
    ];
    leaf.prop_recursive(5, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Semre::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Semre::union(a, b)),
            inner.clone().prop_map(Semre::star),
            inner.clone().prop_map(Semre::plus),
            inner.clone().prop_map(Semre::opt),
            (inner.clone(), "[A-Za-z ]{1,12}").prop_map(|(a, q)| Semre::query(a, q.trim().to_owned() + "q")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Printing then parsing gives back a structurally identical AST.
    #[test]
    fn print_parse_roundtrip(r in semre_strategy()) {
        let printed = r.to_string();
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "printed form {printed:?} does not parse: {:?}", reparsed.err());
        prop_assert_eq!(reparsed.unwrap(), r, "round-trip mismatch for {}", printed);
    }

    /// The skeleton is classical, no larger than the original, and
    /// idempotent.
    #[test]
    fn skeleton_properties(r in semre_strategy()) {
        let s = skeleton(&r);
        prop_assert!(s.is_classical());
        prop_assert!(s.size() <= r.size());
        prop_assert_eq!(skeleton(&s), s.clone());
        // Skeleton nullability is preserved by definition.
        prop_assert_eq!(r.skeleton_nullable(), s.skeleton_nullable());
    }

    /// ⊥-elimination removes every inner ⊥ and never changes nesting
    /// beyond removal.
    #[test]
    fn bot_elimination_properties(r in semre_strategy()) {
        let cleaned = eliminate_bot(&r);
        prop_assert!(cleaned == Semre::Bot || !cleaned.contains_bot());
        prop_assert!(cleaned.size() <= r.size());
        prop_assert!(cleaned.nesting_depth() <= r.nesting_depth());
        // Idempotent.
        prop_assert_eq!(eliminate_bot(&cleaned), cleaned.clone());
    }

    /// Size and query counting are consistent: a SemRE has at least as many
    /// nodes as refinements, and stripping queries removes exactly the
    /// refinement nodes.
    #[test]
    fn size_accounting(r in semre_strategy()) {
        prop_assert!(r.size() >= r.query_count());
        prop_assert_eq!(skeleton(&r).size(), r.size() - r.query_count());
        prop_assert_eq!(r.query_count() == 0, r.is_classical());
        prop_assert!(r.queries().len() <= r.query_count());
    }
}
