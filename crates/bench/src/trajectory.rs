//! The tracked benchmark trajectory (`BENCH_PR10.json`).
//!
//! Subsequent PRs need a perf baseline to regress against; this module
//! measures it and emits it as JSON.  Five families of numbers are
//! recorded for every one of the nine benchmark SemREs, plus one
//! tree-level entry and one overlapped-resolution entry:
//!
//! * **prefilter micro** — ns/line for the skeleton prefilter alone, NFA
//!   state-set simulation vs the lazy DFA, on both the anchored skeleton
//!   and the padded search skeleton;
//! * **prescan micro** (`prescan-speedup`) — ns/line for the membership
//!   prefilter stage with the literal prescan gating the DFA vs the DFA
//!   alone, plus whether the pattern yielded usable literals;
//! * **stream throughput** (`stream-throughput`) — ns/line for a full
//!   batched scan of the corpus through the streaming (chunked I/O) path
//!   vs the in-memory path, split cost included on both sides;
//! * **end-to-end** — ns/line and oracle calls for `is_match` and `find`
//!   with the DFA prefilter on vs off (the arena'd evaluator has no
//!   runtime toggle — it *is* the evaluator — so its effect is captured by
//!   the end-to-end numbers themselves, tracked across PRs);
//! * **equivalence** — booleans asserting that the DFA and NFA prefilters,
//!   the prescan-on and prescan-off matchers, the batched and per-call
//!   planes, the parallel and sequential scans, and the streaming and
//!   in-memory paths all produce identical verdicts on the sample;
//! * **tree scan** (`tree-scan`) — ns/line for a full multi-file `grepo`
//!   run over a generated corpus tree with a sleeping 2 ms/batch
//!   `--oracle-delay` backend, file-level work stealing on 4 workers vs a
//!   sequential scan.  The workers overlap the backend's sleeps across
//!   files, so the ratio measures *latency hiding* — meaningful even on
//!   a single core, where CPU-bound parallelism cannot win — plus
//!   byte-identity of the output across thread counts and the cross-file
//!   oracle-deduplication check (shared-session backend questions <
//!   per-file sum);
//! * **skewed tree** (`skewed-tree`) — the same kind of run over a tree
//!   whose bytes one giant file of mostly-unique lines dominates,
//!   `--split-bytes` sub-file range stealing on vs off at 4 workers,
//!   plus a 1/2/4/8-worker contention sweep and byte-identity across
//!   the whole split x thread grid;
//! * **overlap** (`overlap-speedup`) — ns/line for a batched scan against
//!   a deterministic 1 ms/batch `DelayOracle`, resolver pool (suspend /
//!   resume scheduling) vs synchronous resolution, plus the verdict
//!   equivalence and the suspends == resumes protocol check;
//! * **persist** (`persist-dedupe`) — the same corpus tree scanned cold
//!   (empty answer log) and then warm (fresh session, same log) through
//!   `SharedSession::with_persistence`: the warm scan must issue **zero**
//!   backend questions for previously-seen keys, with identical verdicts,
//!   and the cold/warm backend-key ratio is gated by `--check`;
//! * **tiered cost** (`tiered-cost`) — the same kind of corpus tree
//!   scanned once against the flat `sim-llm` backend and once through the
//!   full built-in tier stack (`tiered:cache+screen+dict:sim-llm`): the
//!   verdicts must be identical, and the flat-over-tiered ratio of
//!   *authoritative-tier* backend keys — how many questions the cheap
//!   tiers shed before the simulated LLM — is gated by `--check`.
//!
//! Timings are best-of-`repeat` over a fixed corpus sample — indicative,
//! not rigorous; the *trajectory* (same harness, same seed, PR after PR)
//! is what matters.  No latency is injected except in the tree-scan and
//! overlap entries, whose whole point is hiding it: the other numbers
//! isolate engine work, not oracle time.  [`Floors`] turns the trajectory into a regression
//! gate: `bench_trajectory --check` fails when a tracked geomean drops
//! below its stored floor.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use semre::automata::{compile, skeleton_matches, LazyDfa, Prescan, SkeletonMatcher};
use semre_core::{Matcher, MatcherConfig, SearchKind};
use semre_grep::stream::{scan_stream, StreamOptions};
use semre_grep::{scan_batched, scan_batched_parallel, ScanOptions};
use semre_syntax::{skeleton, Semre};
use semre_workloads::Workbench;

/// Knobs for a trajectory run.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryConfig {
    /// Corpus generation seed (fixed across PRs).
    pub seed: u64,
    /// Corpus lines sampled per benchmark for the prefilter micro and
    /// `is_match` measurements.
    pub lines_per_bench: usize,
    /// Lines sampled for the (quadratic) `find` measurements.
    pub find_lines: usize,
    /// Maximum line length in the `find` sample.
    pub find_max_len: usize,
    /// Measurement repetitions (best-of).
    pub repeat: u32,
}

impl TrajectoryConfig {
    /// The checked-in baseline configuration.
    pub fn full() -> Self {
        TrajectoryConfig {
            seed: 20250613,
            lines_per_bench: 400,
            find_lines: 40,
            find_max_len: 120,
            repeat: 5,
        }
    }

    /// A reduced configuration for CI smoke runs.
    pub fn quick() -> Self {
        TrajectoryConfig {
            seed: 20250613,
            lines_per_bench: 80,
            find_lines: 10,
            find_max_len: 80,
            repeat: 2,
        }
    }
}

/// One measured (engine, toggle) timing pair.
#[derive(Clone, Copy, Debug)]
pub struct Toggle {
    /// ns/line on the optimized (DFA / default) path.
    pub fast_ns: f64,
    /// ns/line on the reference (NFA) path.
    pub reference_ns: f64,
}

impl Toggle {
    /// Reference over fast — how many times faster the optimized path is.
    pub fn speedup(&self) -> f64 {
        if self.fast_ns <= 0.0 {
            0.0
        } else {
            self.reference_ns / self.fast_ns
        }
    }
}

/// The trajectory record of one benchmark SemRE.
#[derive(Clone, Debug)]
pub struct BenchTrajectory {
    /// Table 1 name.
    pub name: &'static str,
    /// Lines in the `is_match` / prefilter sample.
    pub lines: usize,
    /// Lines in the `find` sample.
    pub find_lines: usize,
    /// Anchored skeleton prefilter, DFA vs NFA.
    pub prefilter: Toggle,
    /// Padded search-skeleton prefilter, DFA vs NFA.
    pub search_prefilter: Toggle,
    /// Membership prefilter stage, prescan-gated DFA vs DFA alone.
    pub prescan: Toggle,
    /// Whether the literal prescan extracted usable literals (the
    /// `prescan-speedup` criterion only applies to these benchmarks).
    pub has_literals: bool,
    /// Full batched corpus scan, streaming (chunked I/O) vs in-memory.
    pub stream: Toggle,
    /// End-to-end `is_match`, DFA prefilter on vs off.
    pub is_match: Toggle,
    /// End-to-end `find`, DFA prefilter on vs off.
    pub find: Toggle,
    /// Logical oracle requests of the `is_match` sweep (identical across
    /// all toggles and planes).
    pub is_match_oracle_calls: u64,
    /// Logical oracle requests of the `find` sweep.
    pub find_oracle_calls: u64,
    /// DFA and NFA prefilters agreed on every line, batched and per-call
    /// planes agreed on every verdict, and the parallel scan (2 and 8
    /// threads) reproduced the sequential scan.
    pub equivalent: bool,
}

/// One benchmark's overlapped-resolution record: a batched scan against a
/// latency-injecting oracle, resolver pool on vs off.
#[derive(Clone, Debug)]
pub struct OverlapBench {
    /// Table 1 name.
    pub name: &'static str,
    /// Lines in the scanned sample.
    pub lines: usize,
    /// Full batched scan under the `DelayOracle`, overlapped (resolver
    /// pool) vs synchronous resolution.
    pub overlapped: Toggle,
    /// Lines the overlapped scan parked on in-flight answers.
    pub suspends: u64,
    /// Checkpoint resumptions that completed a parked line.
    pub resumes: u64,
    /// Keys that actually reached the backend from the pool.
    pub backend_keys: u64,
    /// Overlapped and synchronous verdict vectors were identical.
    pub equivalent: bool,
}

/// The overlapped-resolution trajectory: latency-hiding measured under a
/// deterministic `DelayOracle`, where resolver time — not engine work —
/// dominates, so the overlap is what the numbers isolate.
#[derive(Clone, Debug)]
pub struct OverlapTrajectory {
    /// Injected backend latency per batch, in microseconds.
    pub per_batch_latency_us: u64,
    /// Resolver threads of the overlapped handle.
    pub oracle_threads: usize,
    /// The tracked benchmarks (`spam,1` and `id`).
    pub benches: Vec<OverlapBench>,
}

impl OverlapTrajectory {
    /// Geometric mean of the overlapped-vs-synchronous speedups.
    pub fn geomean_speedup(&self) -> f64 {
        geomean(self.benches.iter().map(|b| b.overlapped.speedup()))
    }

    /// Whether every tracked benchmark matched the synchronous verdicts
    /// and the suspension protocol was actually exercised.
    pub fn equivalent(&self) -> bool {
        self.benches
            .iter()
            .all(|b| b.equivalent && b.suspends > 0 && b.suspends == b.resumes)
    }
}

/// The tree-scan trajectory record: one multi-file `grepo` run over a
/// generated corpus tree.
#[derive(Clone, Debug)]
pub struct TreeScanTrajectory {
    /// Files in the generated tree.
    pub files: usize,
    /// Lines across all files.
    pub lines: usize,
    /// Full multi-file scan, 4 work-stealing workers vs sequential, with
    /// a sleeping per-batch `--oracle-delay` charged at the backend so
    /// the workers have latency to hide.
    pub parallel: Toggle,
    /// Backend questions of a whole-tree scan through one shared session.
    pub shared_backend_keys: u64,
    /// Backend questions when every file keeps its sessions to itself
    /// (the per-file sum the shared session must beat).
    pub per_file_backend_keys: u64,
    /// Output bytes identical for `--threads` 1, 2, and 8.
    pub equivalent: bool,
}

impl TreeScanTrajectory {
    /// Whether cross-file sharing deduplicated anything: the shared
    /// session reached the backend strictly less often than the per-file
    /// sessions combined.
    pub fn deduped(&self) -> bool {
        self.shared_backend_keys < self.per_file_backend_keys
    }
}

/// The skewed-tree trajectory record (ISSUE 10): a tree whose byte count
/// one giant file dominates, scanned at 4 workers with sub-file range
/// splitting on vs off.  Whole-file stealing degenerates to one worker
/// serializing the giant file's oracle batches while the others idle;
/// range splitting spreads them, so the toggle isolates exactly what
/// sub-file work stealing buys.
#[derive(Clone, Debug)]
pub struct SkewedTreeTrajectory {
    /// Files in the generated tree.
    pub files: usize,
    /// Lines across all files.
    pub lines: usize,
    /// Bytes of the dominating giant file.
    pub giant_bytes: u64,
    /// Bytes across the whole tree (the giant file carries > 90 %).
    pub total_bytes: u64,
    /// The `--split-bytes` value of the split-on runs (sized so the
    /// giant file splits into ~4 ranges).
    pub split_bytes: u64,
    /// Scan units of the split-on run, as reported by the scheduler
    /// (small files count one each; the giant file several).
    pub ranges: u64,
    /// Full multi-file scan at 4 workers under the sleeping per-batch
    /// `--oracle-delay`: sub-file splitting on (fast) vs whole-file
    /// stealing (reference).
    pub split: Toggle,
    /// Split-on ns/line at 1, 2, 4, and 8 workers — the contention
    /// sweep, informational.
    pub worker_sweep: Vec<(usize, f64)>,
    /// Output bytes identical across `--split-bytes` {off, on} x
    /// `--threads` {1, 2, 4, 8}.
    pub equivalent: bool,
}

impl SkewedTreeTrajectory {
    /// Whole-file over split wall time at 4 workers — what range
    /// splitting buys on the skew.
    pub fn speedup(&self) -> f64 {
        self.split.speedup()
    }
}

/// The persistence trajectory record: the same corpus tree scanned cold
/// (empty answer log) and then warm (a fresh session over the same log),
/// through `SharedSession::with_persistence`.
#[derive(Clone, Debug)]
pub struct PersistTrajectory {
    /// Files in the generated tree.
    pub files: usize,
    /// Lines across all files.
    pub lines: usize,
    /// Whole-scan wall time, warm vs cold, under a sleeping 1 ms/batch
    /// backend (informational — the regression gate is on the key
    /// counts, which are deterministic).
    pub warm_vs_cold: Toggle,
    /// Backend questions of the cold scan.
    pub cold_backend_keys: u64,
    /// Backend questions of the warm scan — must be **zero**: every key
    /// was answered on the cold scan and replayed from the log.
    pub warm_backend_keys: u64,
    /// Questions the warm scan answered from the persistent store.
    pub warm_persisted_hits: u64,
    /// Distinct entries replayed from the log on the warm open.
    pub replayed: u64,
    /// Answer-log size after the cold scan, in bytes.
    pub log_bytes: u64,
    /// Warm verdicts identical to cold verdicts on every line.
    pub equivalent: bool,
}

impl PersistTrajectory {
    /// Cold-over-warm backend questions — the cross-process dedupe win.
    /// A zero-question warm scan maps to the full cold count, so the
    /// ratio stays finite and the floor stays meaningful.
    pub fn dedupe_ratio(&self) -> f64 {
        self.cold_backend_keys as f64 / self.warm_backend_keys.max(1) as f64
    }
}

/// The tiered-cost record: the same corpus tree scanned against the flat
/// `sim-llm` backend and against the full built-in tier stack
/// (cache → screen → dict → authority), measuring how many questions the
/// cheap tiers shed before the authoritative backend.
#[derive(Clone, Debug)]
pub struct TieredCostTrajectory {
    /// Files in the generated tree.
    pub files: usize,
    /// Lines across all files.
    pub lines: usize,
    /// Whole-scan wall time, tiered vs flat, under a sleeping 1 ms/batch
    /// authoritative backend (informational — the regression gate is on
    /// the key counts, which are deterministic).
    pub tiered_vs_flat: Toggle,
    /// Backend questions of the flat scan.
    pub flat_backend_keys: u64,
    /// Questions that escaped every cheap tier and reached the
    /// authoritative backend on the tiered scan.
    pub tiered_authority_keys: u64,
    /// Questions the cheap tiers (cache / screen / dict) decided.
    pub tiered_cheap_hits: u64,
    /// The rendered per-tier hit/escalation breakdown of the tiered scan.
    pub tier_stats: String,
    /// Tiered verdicts identical to flat verdicts on every line.
    pub equivalent: bool,
}

impl TieredCostTrajectory {
    /// Flat-over-tiered authoritative-tier backend keys — the question
    /// reduction the cheap tiers buy.  The built-in dict tier decides
    /// every lexicon-backed key, so the real authoritative count is zero;
    /// mapping it to the full flat count keeps the ratio finite.
    pub fn key_reduction(&self) -> f64 {
        self.flat_backend_keys as f64 / self.tiered_authority_keys.max(1) as f64
    }
}

/// A full trajectory run.
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// The configuration measured under.
    pub config: TrajectoryConfig,
    /// One record per benchmark SemRE, Table 1 order.
    pub benches: Vec<BenchTrajectory>,
    /// The multi-file tree-scan record.
    pub tree_scan: TreeScanTrajectory,
    /// The skewed-tree sub-file work-stealing record.
    pub skewed_tree: SkewedTreeTrajectory,
    /// The overlapped-resolution record.
    pub overlap: OverlapTrajectory,
    /// The cold-vs-warm persistent-store record.
    pub persist: PersistTrajectory,
    /// The tiered-vs-flat oracle-routing record.
    pub tiered_cost: TieredCostTrajectory,
}

impl Trajectory {
    /// Geometric mean of the anchored-prefilter speedups.
    pub fn geomean_prefilter_speedup(&self) -> f64 {
        geomean(self.benches.iter().map(|b| b.prefilter.speedup()))
    }

    /// Geometric mean of the search-prefilter speedups.
    pub fn geomean_search_prefilter_speedup(&self) -> f64 {
        geomean(self.benches.iter().map(|b| b.search_prefilter.speedup()))
    }

    /// Geometric mean of the end-to-end `is_match` improvements.
    pub fn geomean_is_match_speedup(&self) -> f64 {
        geomean(self.benches.iter().map(|b| b.is_match.speedup()))
    }

    /// Geometric mean of the prescan speedups over the literal-bearing
    /// benchmarks (the only ones the literal screen can accelerate).
    pub fn geomean_prescan_speedup(&self) -> f64 {
        geomean(
            self.benches
                .iter()
                .filter(|b| b.has_literals)
                .map(|b| b.prescan.speedup()),
        )
    }

    /// Geometric mean of in-memory over streaming scan time: 1.0 means
    /// streaming is free, below 1.0 that it costs overhead.
    pub fn geomean_stream_ratio(&self) -> f64 {
        geomean(self.benches.iter().map(|b| b.stream.speedup()))
    }

    /// Whether every benchmark passed all equivalence checks.
    pub fn all_equivalent(&self) -> bool {
        self.benches.iter().all(|b| b.equivalent)
    }

    /// Checks the trajectory against regression floors, returning one
    /// message per violated floor.
    ///
    /// # Errors
    ///
    /// A list of human-readable violations (empty never — `Err` only when
    /// at least one floor is broken).
    pub fn check(&self, floors: &Floors) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let mut gate = |name: &str, value: f64, floor: f64| {
            if value < floor {
                violations.push(format!(
                    "{name} regressed: {value:.2} is below the stored floor {floor:.2}"
                ));
            }
        };
        gate(
            "geomean prefilter speedup (DFA vs NFA)",
            self.geomean_prefilter_speedup(),
            floors.prefilter_speedup,
        );
        gate(
            "geomean end-to-end is_match speedup",
            self.geomean_is_match_speedup(),
            floors.is_match_speedup,
        );
        gate(
            "geomean prescan speedup (literal-bearing)",
            self.geomean_prescan_speedup(),
            floors.prescan_speedup,
        );
        gate(
            "geomean stream ratio (in-memory / streaming)",
            self.geomean_stream_ratio(),
            floors.stream_ratio,
        );
        gate(
            "tree-scan ratio (sequential / 4-worker)",
            self.tree_scan.parallel.speedup(),
            floors.tree_scan_ratio,
        );
        gate(
            "skewed-tree split speedup (4 workers, sub-file ranges vs whole-file)",
            self.skewed_tree.speedup(),
            floors.skewed_tree_speedup,
        );
        gate(
            "geomean overlap speedup (overlapped vs synchronous resolution)",
            self.overlap.geomean_speedup(),
            floors.overlap_speedup,
        );
        gate(
            "persist dedupe ratio (cold / warm backend keys)",
            self.persist.dedupe_ratio(),
            floors.persist_dedupe,
        );
        gate(
            "tiered-cost key reduction (flat / authoritative-tier backend keys)",
            self.tiered_cost.key_reduction(),
            floors.tiered_cost_ratio,
        );
        if self.persist.warm_backend_keys != 0 {
            violations.push(format!(
                "warm persistent store issued {} backend questions for previously-seen keys (must be 0)",
                self.persist.warm_backend_keys
            ));
        }
        if !self.persist.equivalent {
            violations.push("warm-store verdicts diverged from the cold scan".to_owned());
        }
        if !self.tiered_cost.equivalent {
            violations
                .push("tiered oracle routing diverged from the flat backend's verdicts".to_owned());
        }
        if !self.all_equivalent() {
            violations.push("equivalence check failed on some benchmark".to_owned());
        }
        if !self.overlap.equivalent() {
            violations.push(
                "overlapped resolution diverged from synchronous verdicts (or never parked a line)"
                    .to_owned(),
            );
        }
        if !self.tree_scan.equivalent {
            violations.push("tree-scan output differed across thread counts".to_owned());
        }
        if !self.skewed_tree.equivalent {
            violations.push(
                "skewed-tree output differed across the split-bytes / thread grid".to_owned(),
            );
        }
        if !self.tree_scan.deduped() {
            violations.push(format!(
                "tree-scan shared session did not dedupe across files ({} backend keys vs per-file sum {})",
                self.tree_scan.shared_backend_keys, self.tree_scan.per_file_backend_keys
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// Regression floors for `bench_trajectory --check`: the tracked geomeans
/// must not drop below these.  Values are deliberately far below the
/// checked-in full-run numbers (see `BENCH_PR5.json`) so that CI noise on
/// shared runners does not flake, while a real regression — losing the
/// DFA prefilter, the prescan, or streaming going several times slower
/// than in-memory — still fails loudly.
#[derive(Clone, Copy, Debug)]
pub struct Floors {
    /// Anchored-prefilter DFA-vs-NFA geomean (full run ≈ 17×).
    pub prefilter_speedup: f64,
    /// End-to-end `is_match` DFA-on-vs-off geomean (full run ≈ 1.6×).
    pub is_match_speedup: f64,
    /// Prescan-vs-DFA geomean over literal-bearing benchmarks (full run
    /// ≥ 2×; see ROADMAP / ISSUE 4 acceptance).
    pub prescan_speedup: f64,
    /// In-memory-vs-streaming scan-time geomean (≈ 1.0 when streaming is
    /// free; the floor only rejects pathological slowdowns).
    pub stream_ratio: f64,
    /// Sequential-vs-4-worker tree-scan ratio under the sleeping
    /// per-batch `--oracle-delay`: with the sharded answer store, the
    /// workers must actually hide backend latency (> 1), not merely
    /// avoid a pathological slowdown.
    pub tree_scan_ratio: f64,
    /// Split-on-vs-off wall time at 4 workers on the one-giant-file
    /// tree.  The ISSUE 10 acceptance bar: sub-file range stealing must
    /// beat whole-file stealing at least 1.5x where whole-file stealing
    /// degenerates to a sequential scan of the giant file.
    pub skewed_tree_speedup: f64,
    /// Overlapped-vs-synchronous resolution geomean under the 1 ms/batch
    /// `DelayOracle` (full run well above this; the floor is the PR 6
    /// acceptance bar).
    pub overlap_speedup: f64,
    /// Cold-over-warm backend-key ratio of the persistent answer store.
    /// A correct store answers *every* repeated key from disk, so the
    /// real ratio equals the full cold count (hundreds); the floor only
    /// demands the store at least halve the backend traffic.
    pub persist_dedupe: f64,
    /// Flat-over-tiered authoritative-tier backend keys.  The built-in
    /// dict tier completely decides the lexicon-backed `Medicine name`
    /// query the tiered-cost corpus exercises, so the real authoritative
    /// count is zero and the true ratio equals the full flat count; the
    /// floor only demands the tiers at least halve the authoritative
    /// traffic (the ISSUE 9 acceptance bar).
    pub tiered_cost_ratio: f64,
}

impl Floors {
    /// The floors CI enforces.
    pub fn tracked() -> Floors {
        Floors {
            prefilter_speedup: 3.0,
            is_match_speedup: 1.05,
            prescan_speedup: 1.25,
            stream_ratio: 0.5,
            tree_scan_ratio: 1.0,
            skewed_tree_speedup: 1.5,
            overlap_speedup: 3.0,
            persist_dedupe: 2.0,
            tiered_cost_ratio: 2.0,
        }
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let positive: Vec<f64> = values.filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Best-of-`repeat` wall time of `f`, expressed as ns per line.
fn ns_per_line(repeat: u32, lines: usize, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..repeat.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed());
    }
    best.as_nanos() as f64 / lines.max(1) as f64
}

/// Runs the trajectory measurements.
pub fn measure(config: &TrajectoryConfig) -> Trajectory {
    let workbench = Workbench::generate(config.seed, 2000, 2000);
    let benches = workbench
        .benchmarks()
        .iter()
        .map(|spec| measure_spec(config, &workbench, spec))
        .collect();
    Trajectory {
        config: *config,
        benches,
        tree_scan: measure_tree_scan(config),
        skewed_tree: measure_skewed_tree(config),
        overlap: measure_overlap(config, &workbench),
        persist: measure_persist(config),
        tiered_cost: measure_tiered_cost(config),
    }
}

/// The cold-vs-warm persistence measurement: one corpus tree scanned
/// through `SharedSession::with_persistence` over an empty answer log,
/// then again with a fresh session (fresh process state, as far as the
/// oracle plane is concerned) over the same log.  The oracle is
/// deterministic (Assumption 2.4), so replayed answers are as good as
/// fresh ones — the warm scan must not reach the backend at all.  A
/// sleeping 1 ms/batch `DelayOracle` charges a simulated round-trip per
/// backend batch, so the warm/cold wall-time ratio shows what the store
/// saves; the regression gate itself is on the deterministic key counts.
fn measure_persist(config: &TrajectoryConfig) -> PersistTrajectory {
    use semre::{Oracle, PersistentAnswerStore, SemRegexBuilder, SharedSession, SimLlmOracle};
    use semre_workloads::{CorpusTree, CorpusTreeConfig, DelayOracle};

    let tree_config = CorpusTreeConfig {
        // A different seed than the tree scan, so the two entries do not
        // share a corpus by accident.
        seed: config.seed ^ 0x7e57,
        files: (config.lines_per_bench / 16).clamp(8, 32),
        mean_lines: (config.lines_per_bench / 8).clamp(10, 60),
        ..CorpusTreeConfig::default()
    };
    let tree = CorpusTree::generate(&tree_config);
    let log = std::env::temp_dir().join(format!(
        "semre-trajectory-persist-{}-{}.log",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log);

    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";
    let per_batch = Duration::from_millis(1);
    let scan_all = |log: &std::path::Path| -> (SharedSession, Vec<bool>, Duration) {
        let backend: Arc<dyn Oracle> = Arc::new(DelayOracle::sleeping(
            Arc::new(SimLlmOracle::new()),
            per_batch,
            Duration::ZERO,
        ));
        let store = Arc::new(PersistentAnswerStore::open(log).expect("scratch log opens"));
        let session = SharedSession::with_persistence(backend, store, "sim-llm");
        let shared: Arc<dyn Oracle> = Arc::new(session.clone());
        let re = SemRegexBuilder::new()
            .batched(true)
            .build_shared(pattern, shared)
            .expect("trajectory pattern compiles");
        let stream_options = StreamOptions {
            batched: true,
            ..StreamOptions::default()
        };
        let mut verdicts = Vec::new();
        let started = Instant::now();
        for file in &tree.files {
            scan_stream(&re, &file.contents[..], &stream_options, |_, _, matched| {
                verdicts.push(matched);
                true
            })
            .expect("in-memory reader cannot fail");
        }
        (session, verdicts, started.elapsed())
    };

    let (cold_session, cold_verdicts, cold_elapsed) = scan_all(&log);
    let cold_backend_keys = cold_session.stats().backend_keys;
    // Dropping the session drops the store, which flushes and syncs the
    // log — the warm open below replays a complete file.
    drop(cold_session);

    let (warm_session, warm_verdicts, warm_elapsed) = scan_all(&log);
    let warm_backend_keys = warm_session.stats().backend_keys;
    let warm_persisted_hits = warm_session.persisted_hits();
    let store = warm_session
        .persist_store()
        .expect("persistence is configured");
    let replayed = store.replay_report().live as u64;
    let log_bytes = store.file_bytes();
    drop(warm_session);

    let _ = std::fs::remove_file(&log);
    let per_line = |elapsed: Duration| elapsed.as_nanos() as f64 / tree.total_lines.max(1) as f64;
    PersistTrajectory {
        files: tree.files.len(),
        lines: tree.total_lines,
        warm_vs_cold: Toggle {
            fast_ns: per_line(warm_elapsed),
            reference_ns: per_line(cold_elapsed),
        },
        cold_backend_keys,
        warm_backend_keys,
        warm_persisted_hits,
        replayed,
        log_bytes,
        equivalent: warm_verdicts == cold_verdicts,
    }
}

/// The tiered-cost measurement: one corpus tree scanned through a
/// `SharedSession` twice — once with the flat `sim-llm` backend, once
/// with the full built-in tier stack (`tiered:cache+screen+dict:sim-llm`)
/// in front of it.  The dict tier is derived from the same lexicons the
/// simulated LLM answers from, so the verdicts must be byte-identical
/// while the authoritative backend sees only the questions no cheap tier
/// could decide.  A sleeping 1 ms/batch `DelayOracle` charges a simulated
/// round-trip per authoritative batch, so the tiered/flat wall-time ratio
/// shows what the shed questions save; the regression gate itself is on
/// the deterministic key counts.
fn measure_tiered_cost(config: &TrajectoryConfig) -> TieredCostTrajectory {
    use semre::{
        BuiltinTier, Oracle, SemRegexBuilder, SharedSession, SimLlmOracle, TieredResolver,
    };
    use semre_workloads::{CorpusTree, CorpusTreeConfig, DelayOracle};

    let tree_config = CorpusTreeConfig {
        // A seed of its own, so this entry shares a corpus with neither
        // the tree-scan nor the persistence entry.
        seed: config.seed ^ 0x71e2,
        files: (config.lines_per_bench / 16).clamp(8, 32),
        mean_lines: (config.lines_per_bench / 8).clamp(10, 60),
        ..CorpusTreeConfig::default()
    };
    let tree = CorpusTree::generate(&tree_config);

    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";
    let per_batch = Duration::from_millis(1);
    let authority = || -> Arc<dyn Oracle> {
        Arc::new(DelayOracle::sleeping(
            Arc::new(SimLlmOracle::new()),
            per_batch,
            Duration::ZERO,
        ))
    };
    let scan_all = |oracle: Arc<dyn Oracle>| -> (SharedSession, Vec<bool>, Duration) {
        let session = SharedSession::new(oracle);
        let shared: Arc<dyn Oracle> = Arc::new(session.clone());
        let re = SemRegexBuilder::new()
            .batched(true)
            .build_shared(pattern, shared)
            .expect("trajectory pattern compiles");
        let stream_options = StreamOptions {
            batched: true,
            ..StreamOptions::default()
        };
        let mut verdicts = Vec::new();
        let started = Instant::now();
        for file in &tree.files {
            scan_stream(&re, &file.contents[..], &stream_options, |_, _, matched| {
                verdicts.push(matched);
                true
            })
            .expect("in-memory reader cannot fail");
        }
        (session, verdicts, started.elapsed())
    };

    let (flat_session, flat_verdicts, flat_elapsed) = scan_all(authority());
    let flat_backend_keys = flat_session.stats().backend_keys;

    let tiered = TieredResolver::with_builtins(
        &[BuiltinTier::Cache, BuiltinTier::Screen, BuiltinTier::Dict],
        authority(),
    );
    let counters = tiered.counters();
    let (_tiered_session, tiered_verdicts, tiered_elapsed) = scan_all(Arc::new(tiered));
    let stats = counters.snapshot();

    let per_line = |elapsed: Duration| elapsed.as_nanos() as f64 / tree.total_lines.max(1) as f64;
    TieredCostTrajectory {
        files: tree.files.len(),
        lines: tree.total_lines,
        tiered_vs_flat: Toggle {
            fast_ns: per_line(tiered_elapsed),
            reference_ns: per_line(flat_elapsed),
        },
        flat_backend_keys,
        tiered_authority_keys: stats.authority_keys(),
        tiered_cheap_hits: stats.cheap_hits(),
        tier_stats: stats.render(),
        equivalent: tiered_verdicts == flat_verdicts,
    }
}

/// The overlapped-resolution measurement: the tracked benchmarks scanned
/// against their oracles behind a 1 ms/batch `DelayOracle`, once with
/// synchronous resolution and once through an 8-thread resolver pool.
/// Latency dominates engine work here, so the toggle isolates how much of
/// it the suspend/resume scheduling hides.
fn measure_overlap(config: &TrajectoryConfig, workbench: &Workbench) -> OverlapTrajectory {
    use semre::{Oracle, SemRegexBuilder};
    use semre_workloads::DelayOracle;

    let per_batch = Duration::from_millis(1);
    let oracle_threads = 8;
    let chunk = 8;
    let sample_lines = 48;
    // Latency-bound, not engine-bound: one extra repetition is enough to
    // shake scheduler warts without multiplying the injected delays.
    let repeat = config.repeat.min(2);

    let benches = ["spam,1", "id"]
        .into_iter()
        .map(|name| {
            let spec = workbench
                .benchmark(name)
                .expect("tracked overlap benchmark exists");
            let corpus = workbench.corpus(spec.dataset).truncated_to(200);
            let lines: Vec<&str> = corpus
                .lines()
                .iter()
                .take(sample_lines)
                .map(String::as_str)
                .collect();
            let delayed: Arc<dyn Oracle> = Arc::new(DelayOracle::new(
                Arc::clone(&spec.oracle),
                per_batch,
                Duration::ZERO,
            ));
            let build = |threads: usize| {
                let mut builder = SemRegexBuilder::new().batched(true).chunk_lines(chunk);
                if threads > 0 {
                    builder = builder.overlapped(threads);
                }
                builder
                    .build_semre_shared(spec.semre.clone(), Arc::clone(&delayed))
                    .expect("benchmark SemREs compile")
            };
            let sync_re = build(0);
            let over_re = build(oracle_threads);
            let scan = |re: &semre::SemRegex| -> Vec<bool> {
                scan_batched(re, &lines, chunk, ScanOptions::unlimited())
                    .records
                    .iter()
                    .map(|r| r.matched)
                    .collect()
            };
            let expected = scan(&sync_re);
            let got = scan(&over_re);
            let overlapped = Toggle {
                fast_ns: ns_per_line(repeat, lines.len(), || {
                    std::hint::black_box(scan(&over_re));
                }),
                reference_ns: ns_per_line(repeat, lines.len(), || {
                    std::hint::black_box(scan(&sync_re));
                }),
            };
            let stats = over_re
                .resolver_pool()
                .expect("overlapped handle has a pool")
                .stats();
            OverlapBench {
                name: spec.name,
                lines: lines.len(),
                overlapped,
                suspends: stats.suspends,
                resumes: stats.resumes,
                backend_keys: stats.backend_keys,
                equivalent: got == expected,
            }
        })
        .collect();
    OverlapTrajectory {
        per_batch_latency_us: per_batch.as_micros() as u64,
        oracle_threads,
        benches,
    }
}

/// The multi-file tree-scan measurement: a generated corpus tree scanned
/// through the full `grepo` multi-file driver (walk → work-stealing
/// scheduler → streaming per-file scans → shared oracle session), with a
/// sleeping per-batch `--oracle-delay` charged at the backend so the
/// 4-worker run has real latency to overlap.
fn measure_tree_scan(config: &TrajectoryConfig) -> TreeScanTrajectory {
    use semre::{Oracle, SemRegexBuilder, SharedSession, SimLlmOracle};
    use semre_grep::cli::{expand_targets, run_paths, CliOptions};
    use semre_workloads::{CorpusTree, CorpusTreeConfig};

    let tree_config = CorpusTreeConfig {
        seed: config.seed,
        // Scale the tree with the run size: ~24 files full, ~10 quick.
        files: (config.lines_per_bench / 16).clamp(8, 32),
        mean_lines: (config.lines_per_bench / 8).clamp(10, 60),
        ..CorpusTreeConfig::default()
    };
    let tree = CorpusTree::generate(&tree_config);
    let root = std::env::temp_dir().join(format!(
        "semre-trajectory-tree-{}-{}",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    tree.write_to(&root)
        .expect("cannot write scratch corpus tree");

    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";
    let root_str = root.display().to_string();
    // Each backend batch sleeps for a fixed simulated round-trip
    // (`--oracle-delay`), so the sequential scan serializes one sleep per
    // flush while the 4-worker scan overlaps them across files.  Sleeping
    // latency releases the CPU, which keeps the ratio a latency-hiding
    // measurement rather than a core-count measurement: it stays honest
    // on single-core CI runners where CPU-bound work cannot speed up.
    let per_batch_us: u64 = 2_000;
    let run = |threads: usize| -> Vec<u8> {
        let args: Vec<String> = vec![
            "--batched".to_owned(),
            "--oracle-delay".to_owned(),
            per_batch_us.to_string(),
            "--threads".to_owned(),
            threads.to_string(),
            pattern.to_owned(),
            root_str.clone(),
        ];
        let options = CliOptions::parse(args).expect("trajectory CLI args parse");
        let targets = expand_targets(&options);
        let mut out = Vec::new();
        let outcome = run_paths(&options, &targets, &mut out).expect("tree scan runs");
        assert_ne!(outcome.exit_code, 2, "scratch tree must be readable");
        out
    };

    let sequential_out = run(1);
    let equivalent =
        !sequential_out.is_empty() && [2, 8].iter().all(|&threads| run(threads) == sequential_out);
    let parallel = Toggle {
        fast_ns: ns_per_line(config.repeat, tree.total_lines, || {
            std::hint::black_box(run(4));
        }),
        reference_ns: ns_per_line(config.repeat, tree.total_lines, || {
            std::hint::black_box(run(1));
        }),
    };

    // Cross-file deduplication, measured at the library layer so backend
    // questions can be counted exactly: the same per-file batched scans,
    // once through one shared session, once with each file on its own.
    let count_backend_calls = |share_across_files: bool| -> u64 {
        let backend = Arc::new(semre::Instrumented::new(SimLlmOracle::new()));
        let oracle: Arc<dyn Oracle> = if share_across_files {
            Arc::new(SharedSession::new(backend.clone()))
        } else {
            backend.clone()
        };
        let re = SemRegexBuilder::new()
            .batched(true)
            .build_shared(pattern, oracle)
            .expect("trajectory pattern compiles");
        let after_compile = backend.stats().calls;
        let stream_options = semre_grep::stream::StreamOptions {
            batched: true,
            ..semre_grep::stream::StreamOptions::default()
        };
        for file in &tree.files {
            scan_stream(&re, &file.contents[..], &stream_options, |_, _, _| true)
                .expect("in-memory reader cannot fail");
        }
        backend.stats().calls - after_compile
    };
    let shared_backend_keys = count_backend_calls(true);
    let per_file_backend_keys = count_backend_calls(false);

    let _ = std::fs::remove_dir_all(&root);
    TreeScanTrajectory {
        files: tree.files.len(),
        lines: tree.total_lines,
        parallel,
        shared_backend_keys,
        per_file_backend_keys,
        equivalent,
    }
}

/// The skewed-tree measurement (ISSUE 10): generate a tree whose bytes
/// one giant file dominates, then scan it at 4 workers with and without
/// sub-file range splitting under the sleeping per-batch
/// `--oracle-delay`.  The giant file's lines are mostly unique, so the
/// shared session cannot flatten its per-batch cost; without splitting,
/// one worker serializes every giant-file batch while the others idle.
/// `--split-bytes` is sized to cut the giant file into ~4 ranges, one
/// per worker.
fn measure_skewed_tree(config: &TrajectoryConfig) -> SkewedTreeTrajectory {
    use semre_grep::cli::{expand_targets, run_paths, CliOptions};
    use semre_workloads::{CorpusTree, CorpusTreeConfig};

    let tree_config = CorpusTreeConfig {
        seed: config.seed ^ 0x5e3d,
        files: 6,
        mean_lines: 10,
        ..CorpusTreeConfig::default()
    };
    let tree = CorpusTree::generate_skewed(&tree_config, 4_000);
    let root = std::env::temp_dir().join(format!(
        "semre-trajectory-skew-{}-{}",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    tree.write_to(&root)
        .expect("cannot write scratch skewed tree");
    let giant_bytes = tree
        .files
        .iter()
        .find(|f| f.path == std::path::Path::new("giant.txt"))
        .map(|f| f.contents.len() as u64)
        .expect("skewed tree has a giant file");
    let total_bytes = tree.total_bytes() as u64;
    // ~4 ranges over the giant file — one per timed worker.
    let split_bytes = (giant_bytes / 4).max(4096);

    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";
    let root_str = root.display().to_string();
    let per_batch_us: u64 = 2_000;
    let run = |threads: usize, split: Option<u64>| -> (Vec<u8>, u64) {
        let args: Vec<String> = vec![
            "--batched".to_owned(),
            // --stats puts the scheduler's split_files=/ranges= counters
            // on stderr, where `ranges` is read back below.
            "--stats".to_owned(),
            "--oracle-delay".to_owned(),
            per_batch_us.to_string(),
            "--threads".to_owned(),
            threads.to_string(),
            "--split-bytes".to_owned(),
            split.map_or_else(|| "off".to_owned(), |n| n.to_string()),
            pattern.to_owned(),
            root_str.clone(),
        ];
        let options = CliOptions::parse(args).expect("trajectory CLI args parse");
        let targets = expand_targets(&options);
        let mut out = Vec::new();
        let outcome = run_paths(&options, &targets, &mut out).expect("skewed tree scan runs");
        assert_ne!(outcome.exit_code, 2, "scratch tree must be readable");
        let ranges = outcome
            .stderr
            .iter()
            .rev()
            .find_map(|line| {
                line.split_whitespace()
                    .find_map(|tok| tok.strip_prefix("ranges=").and_then(|v| v.parse().ok()))
            })
            .unwrap_or(0);
        (out, ranges)
    };

    let (sequential_out, _) = run(1, None);
    let (_, ranges) = run(4, Some(split_bytes));
    let mut equivalent = !sequential_out.is_empty();
    for threads in [1usize, 2, 4, 8] {
        for split in [None, Some(split_bytes)] {
            equivalent &= run(threads, split).0 == sequential_out;
        }
    }
    let split = Toggle {
        fast_ns: ns_per_line(config.repeat, tree.total_lines, || {
            std::hint::black_box(run(4, Some(split_bytes)));
        }),
        reference_ns: ns_per_line(config.repeat, tree.total_lines, || {
            std::hint::black_box(run(4, None));
        }),
    };
    let worker_sweep = [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            (
                workers,
                ns_per_line(config.repeat, tree.total_lines, || {
                    std::hint::black_box(run(workers, Some(split_bytes)));
                }),
            )
        })
        .collect();

    let _ = std::fs::remove_dir_all(&root);
    SkewedTreeTrajectory {
        files: tree.files.len(),
        lines: tree.total_lines,
        giant_bytes,
        total_bytes,
        split_bytes,
        ranges,
        split,
        worker_sweep,
        equivalent,
    }
}

fn measure_spec(
    config: &TrajectoryConfig,
    workbench: &Workbench,
    spec: &semre_workloads::BenchSpec,
) -> BenchTrajectory {
    let corpus = workbench.corpus(spec.dataset).truncated_to(400);
    let lines: Vec<&String> = corpus.lines().iter().take(config.lines_per_bench).collect();
    let find_corpus = workbench
        .corpus(spec.dataset)
        .truncated_to(config.find_max_len);
    let find_lines: Vec<&String> = find_corpus.lines().iter().take(config.find_lines).collect();

    // --- prefilter micro: the skeleton engines head to head -------------
    let skel = skeleton(&spec.semre);
    let skeleton_snfa = compile(&skel);
    let search_skeleton_snfa = compile(&Semre::padded(skel.clone()));
    let skeleton_dfa = LazyDfa::new(&skeleton_snfa);
    let search_skeleton_dfa = LazyDfa::new(&search_skeleton_snfa);

    let repeat = config.repeat;
    let prescan_screen = Prescan::for_membership(&skeleton_snfa, &skel);
    let has_literals = prescan_screen.has_literals();
    let prescan = Toggle {
        // The full membership prefilter stage as the matcher runs it:
        // prescan screens first, the DFA only on surviving lines.
        fast_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                let bytes = line.as_bytes();
                let verdict = !prescan_screen.rejects(bytes) && skeleton_dfa.matches(bytes);
                std::hint::black_box(verdict);
            }
        }),
        reference_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                std::hint::black_box(skeleton_dfa.matches(line.as_bytes()));
            }
        }),
    };
    let prefilter = Toggle {
        fast_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                std::hint::black_box(skeleton_dfa.matches(line.as_bytes()));
            }
        }),
        reference_ns: ns_per_line(repeat, lines.len(), || {
            let mut nfa = SkeletonMatcher::new(&skeleton_snfa);
            for line in &lines {
                std::hint::black_box(nfa.matches(line.as_bytes()));
            }
        }),
    };
    let search_prefilter = Toggle {
        fast_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                std::hint::black_box(search_skeleton_dfa.matches(line.as_bytes()));
            }
        }),
        reference_ns: ns_per_line(repeat, lines.len(), || {
            let mut nfa = SkeletonMatcher::new(&search_skeleton_snfa);
            for line in &lines {
                std::hint::black_box(nfa.matches(line.as_bytes()));
            }
        }),
    };

    // --- end to end: is_match and find, DFA prefilter on vs off ---------
    let dfa_matcher = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
    let nfa_matcher = Matcher::with_config(
        spec.semre.clone(),
        Arc::clone(&spec.oracle),
        MatcherConfig::nfa_prefilter(),
    );
    let is_match = Toggle {
        fast_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                std::hint::black_box(dfa_matcher.is_match(line.as_bytes()));
            }
        }),
        reference_ns: ns_per_line(repeat, lines.len(), || {
            for line in &lines {
                std::hint::black_box(nfa_matcher.is_match(line.as_bytes()));
            }
        }),
    };
    let find = Toggle {
        fast_ns: ns_per_line(repeat, find_lines.len(), || {
            for line in &find_lines {
                std::hint::black_box(dfa_matcher.find(line.as_bytes()));
            }
        }),
        reference_ns: ns_per_line(repeat, find_lines.len(), || {
            for line in &find_lines {
                std::hint::black_box(nfa_matcher.find(line.as_bytes()));
            }
        }),
    };
    let is_match_oracle_calls: u64 = lines
        .iter()
        .map(|line| dfa_matcher.run(line.as_bytes()).oracle_calls)
        .sum();
    let find_oracle_calls: u64 = find_lines
        .iter()
        .map(|line| {
            dfa_matcher
                .search(line.as_bytes(), SearchKind::Leftmost)
                .oracle_calls
        })
        .sum();

    // --- equivalence: every plane and engine, same verdicts --------------
    let per_call_matcher = Matcher::with_config(
        spec.semre.clone(),
        Arc::clone(&spec.oracle),
        MatcherConfig::per_call(),
    );
    let mut equivalent = true;
    for line in &lines {
        let bytes = line.as_bytes();
        let skel_nfa = skeleton_matches(&skeleton_snfa, bytes);
        equivalent &= skeleton_dfa.matches(bytes) == skel_nfa;
        equivalent &=
            search_skeleton_dfa.matches(bytes) == skeleton_matches(&search_skeleton_snfa, bytes);
        let batched = dfa_matcher.is_match(bytes);
        equivalent &= batched == nfa_matcher.is_match(bytes);
        equivalent &= batched == per_call_matcher.is_match(bytes);
    }
    for line in &find_lines {
        let bytes = line.as_bytes();
        equivalent &= dfa_matcher.find(bytes) == nfa_matcher.find(bytes);
        equivalent &= dfa_matcher.find(bytes) == per_call_matcher.find(bytes);
    }
    // Prescan on vs off: identical verdicts on every corpus line.
    let no_prescan_matcher = Matcher::with_config(
        spec.semre.clone(),
        Arc::clone(&spec.oracle),
        MatcherConfig::no_prescan(),
    );
    for line in &lines {
        equivalent &=
            dfa_matcher.is_match(line.as_bytes()) == no_prescan_matcher.is_match(line.as_bytes());
    }

    // Parallel chunk scan vs sequential, on the facade handle.
    let re = semre::SemRegexBuilder::new()
        .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
        .expect("benchmark SemREs compile");
    let owned: Vec<String> = lines.iter().map(|l| (*l).clone()).collect();
    let sequential = scan_batched(&re, &owned, 64, ScanOptions::unlimited());
    let expected: Vec<bool> = sequential.records.iter().map(|r| r.matched).collect();
    for threads in [2, 8] {
        let parallel = scan_batched_parallel(&re, &owned, 64, threads, ScanOptions::unlimited());
        let got: Vec<bool> = parallel.records.iter().map(|r| r.matched).collect();
        equivalent &= got == expected;
    }

    // --- stream throughput: chunked I/O vs in-memory, split included -----
    let text: String = owned.iter().map(|l| format!("{l}\n")).collect();
    let stream_options = StreamOptions {
        chunk_bytes: 64 * 1024,
        chunk_lines: 64,
        threads: 1,
        batched: true,
        read_ahead: false,
        scan: ScanOptions::unlimited(),
    };
    let stream = Toggle {
        fast_ns: ns_per_line(repeat, owned.len(), || {
            let mut matched = 0u64;
            scan_stream(&re, text.as_bytes(), &stream_options, |_, _, m| {
                matched += u64::from(m);
                true
            })
            .expect("in-memory reader cannot fail");
            std::hint::black_box(matched);
        }),
        reference_ns: ns_per_line(repeat, owned.len(), || {
            let split: Vec<&str> = text.lines().collect();
            let report = scan_batched(&re, &split, 64, ScanOptions::unlimited());
            std::hint::black_box(report.matched_lines());
        }),
    };
    // Streaming vs in-memory: identical verdicts in identical order.
    let mut stream_verdicts = Vec::new();
    scan_stream(&re, text.as_bytes(), &stream_options, |_, _, m| {
        stream_verdicts.push(m);
        true
    })
    .expect("in-memory reader cannot fail");
    equivalent &= stream_verdicts == expected;

    BenchTrajectory {
        name: spec.name,
        lines: lines.len(),
        find_lines: find_lines.len(),
        prefilter,
        search_prefilter,
        prescan,
        has_literals,
        stream,
        is_match,
        find,
        is_match_oracle_calls,
        find_oracle_calls,
        equivalent,
    }
}

/// Serializes a trajectory as the `BENCH_PR10.json` document
/// (hand-rolled: the workspace has no serde).
pub fn to_json(trajectory: &Trajectory) -> String {
    let mut out = String::new();
    let c = &trajectory.config;
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_PR10\",\n");
    out.push_str(
        "  \"description\": \"Perf trajectory: sub-file work stealing on skewed trees, cost-tiered oracle routing, persistent cross-process answer store, overlapped oracle resolution, multi-file tree scan, literal prescan, streaming scan pipeline, lazy-DFA skeleton prefilter, arena evaluator, parallel chunk scan\",\n",
    );
    let _ = writeln!(
        out,
        "  \"config\": {{\"seed\": {}, \"lines_per_bench\": {}, \"find_lines\": {}, \"find_max_len\": {}, \"repeat\": {}}},",
        c.seed, c.lines_per_bench, c.find_lines, c.find_max_len, c.repeat
    );
    out.push_str("  \"benchmarks\": [\n");
    for (i, b) in trajectory.benches.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {:?}, \"lines\": {}, \"find_lines\": {}, \"has_literals\": {},\n      \"prescan\": {},\n      \"stream\": {},\n      \"prefilter\": {},\n      \"search_prefilter\": {},\n      \"is_match\": {},\n      \"find\": {},\n      \"is_match_oracle_calls\": {}, \"find_oracle_calls\": {}, \"equivalent\": {}}}",
            b.name,
            b.lines,
            b.find_lines,
            b.has_literals,
            toggle_json(&b.prescan, "prescan_ns_per_line", "dfa_ns_per_line"),
            toggle_json(&b.stream, "stream_ns_per_line", "in_memory_ns_per_line"),
            toggle_json(&b.prefilter, "dfa_ns_per_line", "nfa_ns_per_line"),
            toggle_json(&b.search_prefilter, "dfa_ns_per_line", "nfa_ns_per_line"),
            toggle_json(&b.is_match, "dfa_ns_per_line", "nfa_ns_per_line"),
            toggle_json(&b.find, "dfa_ns_per_line", "nfa_ns_per_line"),
            b.is_match_oracle_calls,
            b.find_oracle_calls,
            b.equivalent
        );
        out.push_str(if i + 1 < trajectory.benches.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let tree = &trajectory.tree_scan;
    let _ = writeln!(
        out,
        "  \"tree_scan\": {{\"files\": {}, \"lines\": {}, \"parallel\": {}, \"shared_backend_keys\": {}, \"per_file_backend_keys\": {}, \"deduped\": {}, \"equivalent\": {}}},",
        tree.files,
        tree.lines,
        toggle_json(&tree.parallel, "workers4_ns_per_line", "sequential_ns_per_line"),
        tree.shared_backend_keys,
        tree.per_file_backend_keys,
        tree.deduped(),
        tree.equivalent
    );
    let skew = &trajectory.skewed_tree;
    let sweep: Vec<String> = skew
        .worker_sweep
        .iter()
        .map(|(workers, ns)| format!("{{\"workers\": {workers}, \"ns_per_line\": {ns:.1}}}"))
        .collect();
    let _ = writeln!(
        out,
        "  \"skewed_tree\": {{\"files\": {}, \"lines\": {}, \"giant_bytes\": {}, \"total_bytes\": {}, \"split_bytes\": {}, \"ranges\": {}, \"split\": {}, \"worker_sweep\": [{}], \"equivalent\": {}}},",
        skew.files,
        skew.lines,
        skew.giant_bytes,
        skew.total_bytes,
        skew.split_bytes,
        skew.ranges,
        toggle_json(&skew.split, "split_ns_per_line", "whole_file_ns_per_line"),
        sweep.join(", "),
        skew.equivalent
    );
    let overlap = &trajectory.overlap;
    let _ = writeln!(
        out,
        "  \"overlap\": {{\"per_batch_latency_us\": {}, \"oracle_threads\": {}, \"benchmarks\": [",
        overlap.per_batch_latency_us, overlap.oracle_threads
    );
    for (i, b) in overlap.benches.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {:?}, \"lines\": {}, \"overlapped\": {}, \"suspends\": {}, \"resumes\": {}, \"backend_keys\": {}, \"equivalent\": {}}}",
            b.name,
            b.lines,
            toggle_json(&b.overlapped, "overlapped_ns_per_line", "synchronous_ns_per_line"),
            b.suspends,
            b.resumes,
            b.backend_keys,
            b.equivalent
        );
        out.push_str(if i + 1 < overlap.benches.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        out,
        "  ], \"geomean_overlap_speedup\": {:.2}, \"equivalent\": {}}},",
        overlap.geomean_speedup(),
        overlap.equivalent()
    );
    let persist = &trajectory.persist;
    let _ = writeln!(
        out,
        "  \"persist\": {{\"files\": {}, \"lines\": {}, \"warm_vs_cold\": {}, \"cold_backend_keys\": {}, \"warm_backend_keys\": {}, \"warm_persisted_hits\": {}, \"replayed\": {}, \"log_bytes\": {}, \"dedupe_ratio\": {:.2}, \"equivalent\": {}}},",
        persist.files,
        persist.lines,
        toggle_json(&persist.warm_vs_cold, "warm_ns_per_line", "cold_ns_per_line"),
        persist.cold_backend_keys,
        persist.warm_backend_keys,
        persist.warm_persisted_hits,
        persist.replayed,
        persist.log_bytes,
        persist.dedupe_ratio(),
        persist.equivalent
    );
    let tiered = &trajectory.tiered_cost;
    let _ = writeln!(
        out,
        "  \"tiered_cost\": {{\"files\": {}, \"lines\": {}, \"tiered_vs_flat\": {}, \"flat_backend_keys\": {}, \"tiered_authority_keys\": {}, \"tiered_cheap_hits\": {}, \"tier_stats\": {:?}, \"key_reduction\": {:.2}, \"equivalent\": {}}},",
        tiered.files,
        tiered.lines,
        toggle_json(&tiered.tiered_vs_flat, "tiered_ns_per_line", "flat_ns_per_line"),
        tiered.flat_backend_keys,
        tiered.tiered_authority_keys,
        tiered.tiered_cheap_hits,
        tiered.tier_stats,
        tiered.key_reduction(),
        tiered.equivalent
    );
    let floors = Floors::tracked();
    let _ = writeln!(
        out,
        "  \"floors\": {{\"prefilter_speedup\": {:.2}, \"is_match_speedup\": {:.2}, \"prescan_speedup\": {:.2}, \"stream_ratio\": {:.2}, \"tree_scan_ratio\": {:.2}, \"skewed_tree_speedup\": {:.2}, \"overlap_speedup\": {:.2}, \"persist_dedupe\": {:.2}, \"tiered_cost_ratio\": {:.2}}},",
        floors.prefilter_speedup,
        floors.is_match_speedup,
        floors.prescan_speedup,
        floors.stream_ratio,
        floors.tree_scan_ratio,
        floors.skewed_tree_speedup,
        floors.overlap_speedup,
        floors.persist_dedupe,
        floors.tiered_cost_ratio
    );
    let _ = writeln!(
        out,
        "  \"summary\": {{\"geomean_prefilter_speedup\": {:.2}, \"geomean_search_prefilter_speedup\": {:.2}, \"geomean_is_match_speedup\": {:.2}, \"geomean_prescan_speedup\": {:.2}, \"geomean_stream_ratio\": {:.2}, \"tree_scan_speedup\": {:.2}, \"tree_scan_deduped\": {}, \"skewed_tree_speedup\": {:.2}, \"skewed_tree_ranges\": {}, \"geomean_overlap_speedup\": {:.2}, \"persist_dedupe_ratio\": {:.2}, \"persist_warm_backend_keys\": {}, \"tiered_key_reduction\": {:.2}, \"tiered_authority_keys\": {}, \"all_equivalent\": {}}}",
        trajectory.geomean_prefilter_speedup(),
        trajectory.geomean_search_prefilter_speedup(),
        trajectory.geomean_is_match_speedup(),
        trajectory.geomean_prescan_speedup(),
        trajectory.geomean_stream_ratio(),
        trajectory.tree_scan.parallel.speedup(),
        trajectory.tree_scan.deduped(),
        trajectory.skewed_tree.speedup(),
        trajectory.skewed_tree.ranges,
        trajectory.overlap.geomean_speedup(),
        trajectory.persist.dedupe_ratio(),
        trajectory.persist.warm_backend_keys,
        trajectory.tiered_cost.key_reduction(),
        trajectory.tiered_cost.tiered_authority_keys,
        trajectory.all_equivalent()
            && trajectory.tree_scan.equivalent
            && trajectory.skewed_tree.equivalent
            && trajectory.overlap.equivalent()
            && trajectory.persist.equivalent
            && trajectory.tiered_cost.equivalent
    );
    out.push_str("}\n");
    out
}

fn toggle_json(toggle: &Toggle, fast_key: &str, reference_key: &str) -> String {
    format!(
        "{{\"{}\": {:.1}, \"{}\": {:.1}, \"speedup\": {:.2}}}",
        fast_key,
        toggle.fast_ns,
        reference_key,
        toggle.reference_ns,
        toggle.speedup()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trajectory_is_equivalent_and_serializes() {
        let config = TrajectoryConfig {
            lines_per_bench: 25,
            find_lines: 5,
            repeat: 1,
            ..TrajectoryConfig::quick()
        };
        let trajectory = measure(&config);
        assert_eq!(trajectory.benches.len(), 9);
        assert!(
            trajectory.all_equivalent(),
            "some benchmark failed an equivalence check: {:?}",
            trajectory
                .benches
                .iter()
                .filter(|b| !b.equivalent)
                .map(|b| b.name)
                .collect::<Vec<_>>()
        );
        assert!(
            trajectory.tree_scan.equivalent,
            "tree-scan output must be thread-count independent"
        );
        assert!(
            trajectory.tree_scan.deduped(),
            "shared session must beat the per-file sum ({} vs {})",
            trajectory.tree_scan.shared_backend_keys,
            trajectory.tree_scan.per_file_backend_keys
        );
        assert!(
            trajectory.skewed_tree.equivalent,
            "skewed-tree output must be split- and thread-independent"
        );
        assert!(
            trajectory.skewed_tree.ranges > trajectory.skewed_tree.files as u64,
            "the giant file must split into several ranges: {:?}",
            trajectory.skewed_tree
        );
        assert!(
            trajectory.skewed_tree.giant_bytes * 10 >= trajectory.skewed_tree.total_bytes * 9,
            "the giant file must dominate the tree: {:?}",
            trajectory.skewed_tree
        );
        assert_eq!(trajectory.skewed_tree.worker_sweep.len(), 4);
        assert!(
            trajectory.overlap.equivalent(),
            "overlapped resolution must match synchronous verdicts and park lines: {:?}",
            trajectory.overlap.benches
        );
        assert_eq!(
            trajectory.persist.warm_backend_keys, 0,
            "the warm store must answer every previously-seen key from disk: {:?}",
            trajectory.persist
        );
        assert!(
            trajectory.persist.equivalent && trajectory.persist.cold_backend_keys > 0,
            "{:?}",
            trajectory.persist
        );
        assert!(
            trajectory.persist.warm_persisted_hits > 0 && trajectory.persist.replayed > 0,
            "{:?}",
            trajectory.persist
        );
        assert!(
            trajectory.tiered_cost.equivalent,
            "tiered routing must not change verdicts: {:?}",
            trajectory.tiered_cost
        );
        assert_eq!(
            trajectory.tiered_cost.tiered_authority_keys, 0,
            "the dict tier decides every Medicine-name key: {:?}",
            trajectory.tiered_cost
        );
        assert!(
            trajectory.tiered_cost.flat_backend_keys > 0
                && trajectory.tiered_cost.tiered_cheap_hits > 0,
            "{:?}",
            trajectory.tiered_cost
        );
        assert!(
            trajectory.tiered_cost.key_reduction() >= Floors::tracked().tiered_cost_ratio,
            "the acceptance floor must hold even on the quick corpus: {:?}",
            trajectory.tiered_cost
        );
        let json = to_json(&trajectory);
        assert!(json.contains("\"artifact\": \"BENCH_PR10\""));
        assert!(json.contains("\"skewed_tree\""));
        assert!(json.contains("skewed_tree_speedup"));
        assert!(json.contains("\"worker_sweep\""));
        assert!(json.contains("\"name\": \"pass\""));
        assert!(json.contains("geomean_prefilter_speedup"));
        assert!(json.contains("geomean_prescan_speedup"));
        assert!(json.contains("\"prescan\""));
        assert!(json.contains("\"stream\""));
        assert!(json.contains("\"tree_scan\""));
        assert!(json.contains("tree_scan_ratio"));
        assert!(json.contains("\"overlap\""));
        assert!(json.contains("overlap_speedup"));
        assert!(json.contains("\"persist\""));
        assert!(json.contains("persist_dedupe"));
        assert!(json.contains("\"warm_backend_keys\": 0"));
        assert!(json.contains("\"tiered_cost\""));
        assert!(json.contains("tiered_cost_ratio"));
        assert!(json.contains("\"tiered_authority_keys\": 0"));
        assert!(json.contains("dict_hits="));
        assert!(json.contains("\"floors\""));
        assert!(json.trim_end().ends_with('}'));
        // Crude JSON sanity: balanced braces and brackets.
        let braces = json.matches('{').count();
        assert_eq!(braces, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The literal-bearing benchmarks are known: spam/pass/wdom carry
        // multi-byte literals, edom/file/ip single-byte ones.
        let literal_bearing = trajectory.benches.iter().filter(|b| b.has_literals).count();
        assert!(
            literal_bearing >= 6,
            "only {literal_bearing} literal-bearing"
        );
    }

    #[test]
    fn floors_flag_regressions_and_pass_sane_numbers() {
        let config = TrajectoryConfig {
            lines_per_bench: 25,
            find_lines: 5,
            repeat: 1,
            ..TrajectoryConfig::quick()
        };
        let trajectory = measure(&config);
        // Impossible floors must be reported as violations.
        let impossible = Floors {
            prefilter_speedup: 1e9,
            is_match_speedup: 1e9,
            prescan_speedup: 1e9,
            stream_ratio: 1e9,
            tree_scan_ratio: 1e9,
            skewed_tree_speedup: 1e9,
            overlap_speedup: 1e9,
            persist_dedupe: 1e9,
            tiered_cost_ratio: 1e9,
        };
        let violations = trajectory.check(&impossible).unwrap_err();
        assert_eq!(violations.len(), 9, "{violations:?}");
        assert!(violations[0].contains("below the stored floor"));
        // Trivial floors always pass (equivalence already asserted above).
        let trivial = Floors {
            prefilter_speedup: 0.0,
            is_match_speedup: 0.0,
            prescan_speedup: 0.0,
            stream_ratio: 0.0,
            tree_scan_ratio: 0.0,
            skewed_tree_speedup: 0.0,
            overlap_speedup: 0.0,
            persist_dedupe: 0.0,
            tiered_cost_ratio: 0.0,
        };
        assert!(trajectory.check(&trivial).is_ok());

        // Byte-divergence across the split/thread grid is a hard
        // violation regardless of floors.
        let mut skew_broken = trajectory.clone();
        skew_broken.skewed_tree.equivalent = false;
        let violations = skew_broken.check(&trivial).unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("skewed-tree output differed")),
            "{violations:?}"
        );

        // A trajectory whose warm scan reached the backend is a hard
        // violation even when every floor is trivial.
        let mut broken = trajectory.clone();
        broken.persist.warm_backend_keys = 3;
        let violations = broken.check(&trivial).unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("warm persistent store")),
            "{violations:?}"
        );

        // Diverged tiered verdicts are likewise a hard violation.
        let mut forged = trajectory.clone();
        forged.tiered_cost.equivalent = false;
        let violations = forged.check(&trivial).unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("tiered oracle routing diverged")),
            "{violations:?}"
        );
    }
}
