//! Benchmark harness regenerating the paper's evaluation.
//!
//! The `experiments` binary and the Criterion benches in `benches/` both
//! build on the [`harness`] module, which provides one function per table
//! and figure of the paper:
//!
//! | paper artefact | harness function |
//! |---|---|
//! | Table 1 (benchmark SemREs and matched lines) | [`harness::table1`] |
//! | Table 2 (SNFA vs DP throughput and oracle use) | [`harness::table2`] / [`harness::summarize_table2`] |
//! | Fig. 10 top row (line-length distributions) | [`harness::fig10_distributions`] |
//! | Fig. 10 grid (median RT vs line length) | [`harness::fig10`] |
//! | Theorem 4.1 (Ω(|w|²) oracle queries) | [`harness::query_complexity_experiment`] |
//! | Section 4.2 (triangle-finding reduction) | [`harness::triangle_experiment`] |
//! | Note A.4 / Table 3 (evaluation-strategy ablation) | [`harness::ablation`] |
//! | Batched query plane (DESIGN.md) | [`harness::batch_efficiency`] |
//!
//! Run `cargo run --release -p semre-bench --bin experiments -- all` to print
//! every table, or `cargo bench -p semre-bench` for the micro-bench timings.
//!
//! The [`trajectory`] module measures the tracked perf baseline
//! (`BENCH_PR3.json`, emitted by the `bench_trajectory` binary): skeleton
//! prefilter DFA vs NFA, end-to-end `is_match`/`find` toggles, and the
//! verdict-equivalence checks guarding them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod micro;
pub mod trajectory;

pub use harness::{
    ablation, batch_efficiency, fig10, fig10_distributions, query_complexity_experiment,
    summarize_table2, table1, table2, triangle_experiment, Algorithm, BatchEfficiencyRow,
    ExperimentConfig,
};
