//! Shared experiment harness.
//!
//! Each public function regenerates the data behind one table or figure of
//! the paper's evaluation section, returning plain row/series structs that
//! the `experiments` binary formats as text and the Criterion benches reuse
//! for workload construction.  All experiments are parameterised by an
//! [`ExperimentConfig`] so that corpus sizes and time budgets can be scaled
//! from quick smoke runs to long laptop-scale runs.

use std::sync::Arc;
use std::time::Duration;

use semre_core::{DpMatcher, Matcher, MatcherConfig};
use semre_grep::{scan, ScanOptions, ScanReport};
use semre_oracle::{BatchStats, Instrumented, Oracle};
use semre_workloads::query_complexity::{self, MatcherKind, QueryComplexityPoint};
use semre_workloads::triangle::{self, Graph};
use semre_workloads::{BenchSpec, Workbench};

/// Knobs shared by every experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Seed for corpus generation.
    pub seed: u64,
    /// Number of spam-corpus lines to generate.
    pub spam_lines: usize,
    /// Number of Java-corpus lines to generate.
    pub java_lines: usize,
    /// Per-(SemRE, algorithm) wall-clock budget, mirroring the paper's
    /// 40-minute timeout (scaled down).
    pub time_budget: Duration,
    /// Cap on the number of lines scanned per (SemRE, algorithm).
    pub max_lines: Option<usize>,
    /// Drop corpus lines longer than this many bytes before scanning
    /// (the paper keeps lines up to 1 000 characters; smaller caps keep the
    /// cubic DP baseline affordable on small machines).
    pub max_line_len: Option<usize>,
    /// Whether to *spend* the simulated oracle latency (busy-waiting) so
    /// that wall-clock numbers include oracle time, as in the paper.  When
    /// `false` the latency is only accounted in the statistics.
    pub spin_latency: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 20250613,
            spam_lines: 4000,
            java_lines: 4000,
            time_budget: Duration::from_secs(20),
            max_lines: None,
            max_line_len: None,
            spin_latency: true,
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for tests and smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            seed: 7,
            spam_lines: 250,
            java_lines: 250,
            time_budget: Duration::from_secs(10),
            max_lines: Some(100),
            max_line_len: Some(100),
            spin_latency: false,
        }
    }

    /// Generates the corpora and oracle databases for this configuration.
    pub fn workbench(&self) -> Workbench {
        Workbench::generate(self.seed, self.spam_lines, self.java_lines)
    }

    fn scan_options(&self) -> ScanOptions {
        let mut options = ScanOptions::with_time_budget(self.time_budget);
        options.max_lines = self.max_lines;
        options
    }

    /// Applies the line-length cap to a corpus.
    fn prepare<'c>(
        &self,
        corpus: &'c semre_workloads::Corpus,
    ) -> std::borrow::Cow<'c, semre_workloads::Corpus> {
        match self.max_line_len {
            Some(cap) => std::borrow::Cow::Owned(corpus.truncated_to(cap)),
            None => std::borrow::Cow::Borrowed(corpus),
        }
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1: benchmark SemRE statistics.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset name ("Spam" / "Code").
    pub dataset: String,
    /// Benchmark name.
    pub name: &'static str,
    /// Backing oracle kind.
    pub oracle: &'static str,
    /// SemRE size `|r|` (AST nodes of the padded expression).
    pub size: usize,
    /// Number of corpus lines scanned.
    pub lines: usize,
    /// Number of lines that matched.
    pub matched: usize,
}

/// Regenerates Table 1: sizes and matched-line counts for the nine
/// benchmark SemREs over the synthetic corpora.
pub fn table1(config: &ExperimentConfig, workbench: &Workbench) -> Vec<Table1Row> {
    workbench
        .benchmarks()
        .into_iter()
        .map(|spec| {
            let corpus = config.prepare(workbench.corpus(spec.dataset));
            let matcher = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
            let report = scan(
                &matcher,
                corpus.lines(),
                semre_oracle::OracleStats::default,
                config.scan_options(),
            );
            Table1Row {
                dataset: spec.dataset.to_string(),
                name: spec.name,
                oracle: spec.oracle_kind,
                size: spec.semre.size(),
                lines: report.lines(),
                matched: report.matched_lines(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Which algorithm a measurement refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The query-graph (SNFA) matcher of Section 3.
    Snfa,
    /// The dynamic-programming baseline of Section 2.1.
    Dp,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Snfa => write!(f, "SNFA"),
            Algorithm::Dp => write!(f, "DP"),
        }
    }
}

/// The Table 2 measurements for one (SemRE, algorithm) pair.
#[derive(Clone, Debug)]
pub struct Table2Cell {
    /// Reciprocal throughput over all scanned lines (ms/line).
    pub rt_total_ms: f64,
    /// Reciprocal throughput over matched lines (ms/line).
    pub rt_matched_ms: f64,
    /// Oracle calls per line.
    pub oracle_calls_per_line: f64,
    /// Fraction of matching time spent inside the oracle.
    pub oracle_fraction: f64,
    /// Characters submitted to the oracle per line.
    pub query_chars_per_line: f64,
    /// Lines processed within the budget.
    pub lines: usize,
    /// Lines that matched.
    pub matched: usize,
    /// Whether the scan hit the time budget.
    pub timed_out: bool,
}

/// One row of Table 2: both algorithms on one benchmark SemRE.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Query-graph matcher measurements.
    pub snfa: Table2Cell,
    /// DP baseline measurements.
    pub dp: Table2Cell,
}

impl Table2Row {
    /// Total-throughput speedup of the SNFA matcher over the baseline.
    pub fn speedup_total(&self) -> f64 {
        safe_ratio(self.dp.rt_total_ms, self.snfa.rt_total_ms)
    }

    /// Matched-line-throughput speedup of the SNFA matcher over the
    /// baseline.
    pub fn speedup_matched(&self) -> f64 {
        safe_ratio(self.dp.rt_matched_ms, self.snfa.rt_matched_ms)
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Aggregate statistics over a set of Table 2 rows (the headline numbers of
/// Sections 5.1 and 5.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Table2Summary {
    /// Geometric-mean speedup of total throughput (paper: ≈ 101×).
    pub geomean_speedup_total: f64,
    /// Geometric-mean speedup of matched-line throughput (paper: ≈ 12×).
    pub geomean_speedup_matched: f64,
    /// Relative reduction in oracle calls, SNFA vs DP (paper: ≈ 51 % fewer).
    pub oracle_call_reduction: f64,
    /// Ratio of DP oracle time to SNFA oracle time (paper: ≈ 3×).
    pub oracle_time_ratio: f64,
}

/// Builds the scan report for one (spec, algorithm) pair.
fn run_spec(
    config: &ExperimentConfig,
    workbench: &Workbench,
    spec: &BenchSpec,
    algorithm: Algorithm,
) -> ScanReport {
    let corpus = config.prepare(workbench.corpus(spec.dataset));
    let oracle = if config.spin_latency {
        Instrumented::with_spun_latency(Arc::clone(&spec.oracle), spec.latency)
    } else {
        Instrumented::with_latency(Arc::clone(&spec.oracle), spec.latency)
    };
    match algorithm {
        Algorithm::Snfa => {
            // The per-call plane, as in the paper's prototype: Table 2
            // compares the *algorithms*, and the DP baseline has no batch
            // transport to compare against.  Transport-level savings are
            // measured by the batch-efficiency experiment.
            let matcher =
                Matcher::with_config(spec.semre.clone(), &oracle, MatcherConfig::per_call());
            scan(
                &matcher,
                corpus.lines(),
                || oracle.stats(),
                config.scan_options(),
            )
        }
        Algorithm::Dp => {
            let matcher = DpMatcher::new(spec.semre.clone(), &oracle);
            scan(
                &matcher,
                corpus.lines(),
                || oracle.stats(),
                config.scan_options(),
            )
        }
    }
}

fn cell_from_report(report: &ScanReport) -> Table2Cell {
    Table2Cell {
        rt_total_ms: report.rt_total_ms(),
        rt_matched_ms: report.rt_matched_ms(),
        oracle_calls_per_line: report.oracle_calls_per_line(),
        oracle_fraction: report.oracle_fraction(),
        query_chars_per_line: report.query_chars_per_line(),
        lines: report.lines(),
        matched: report.matched_lines(),
        timed_out: report.timed_out,
    }
}

/// Regenerates Table 2: SNFA vs DP matching performance and oracle usage
/// for every benchmark SemRE.
pub fn table2(config: &ExperimentConfig, workbench: &Workbench) -> Vec<Table2Row> {
    workbench
        .benchmarks()
        .iter()
        .map(|spec| {
            let snfa = cell_from_report(&run_spec(config, workbench, spec, Algorithm::Snfa));
            let dp = cell_from_report(&run_spec(config, workbench, spec, Algorithm::Dp));
            Table2Row {
                name: spec.name,
                snfa,
                dp,
            }
        })
        .collect()
}

/// Computes the Section 5.1 / 5.2 headline aggregates from Table 2 rows.
pub fn summarize_table2(rows: &[Table2Row]) -> Table2Summary {
    if rows.is_empty() {
        return Table2Summary::default();
    }
    let geomean = |values: Vec<f64>| -> f64 {
        let positive: Vec<f64> = values.into_iter().filter(|v| *v > 0.0).collect();
        if positive.is_empty() {
            return 0.0;
        }
        (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
    };
    let total_calls = |pick: fn(&Table2Row) -> &Table2Cell| -> f64 {
        rows.iter()
            .map(|r| pick(r).oracle_calls_per_line * pick(r).lines as f64)
            .sum()
    };
    let oracle_time = |pick: fn(&Table2Row) -> &Table2Cell| -> f64 {
        rows.iter()
            .map(|r| pick(r).oracle_fraction * pick(r).rt_total_ms * pick(r).lines as f64)
            .sum()
    };
    let snfa_calls = total_calls(|r| &r.snfa);
    let dp_calls = total_calls(|r| &r.dp);
    Table2Summary {
        geomean_speedup_total: geomean(rows.iter().map(Table2Row::speedup_total).collect()),
        geomean_speedup_matched: geomean(rows.iter().map(Table2Row::speedup_matched).collect()),
        oracle_call_reduction: if dp_calls > 0.0 {
            1.0 - snfa_calls / dp_calls
        } else {
            0.0
        },
        oracle_time_ratio: safe_ratio(oracle_time(|r| &r.dp), oracle_time(|r| &r.snfa)),
    }
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// The Fig. 10 data for one benchmark SemRE: median running time per
/// line-length bucket, for both algorithms.
#[derive(Clone, Debug)]
pub struct Fig10Series {
    /// Benchmark name.
    pub name: &'static str,
    /// `(bucket_start, median_ms, lines)` for the SNFA matcher.
    pub snfa: Vec<(usize, f64, usize)>,
    /// `(bucket_start, median_ms, lines)` for the DP baseline.
    pub dp: Vec<(usize, f64, usize)>,
}

/// Regenerates the Fig. 10 grid: lines longer than 200 characters are
/// dropped, and the median per-line matching time is reported per
/// length bucket (only buckets with at least 10 lines, as in the paper).
pub fn fig10(config: &ExperimentConfig, workbench: &Workbench, bucket: usize) -> Vec<Fig10Series> {
    workbench
        .benchmarks()
        .iter()
        .map(|spec| {
            let corpus = workbench.corpus(spec.dataset).truncated_to(200);
            let run = |algorithm: Algorithm| -> Vec<(usize, f64, usize)> {
                let oracle = if config.spin_latency {
                    Instrumented::with_spun_latency(Arc::clone(&spec.oracle), spec.latency)
                } else {
                    Instrumented::with_latency(Arc::clone(&spec.oracle), spec.latency)
                };
                let report = match algorithm {
                    Algorithm::Snfa => {
                        // Per-call plane, matching Table 2 (see run_spec).
                        let matcher = Matcher::with_config(
                            spec.semre.clone(),
                            &oracle,
                            MatcherConfig::per_call(),
                        );
                        scan(
                            &matcher,
                            corpus.lines(),
                            || oracle.stats(),
                            config.scan_options(),
                        )
                    }
                    Algorithm::Dp => {
                        let matcher = DpMatcher::new(spec.semre.clone(), &oracle);
                        scan(
                            &matcher,
                            corpus.lines(),
                            || oracle.stats(),
                            config.scan_options(),
                        )
                    }
                };
                report.median_rt_by_length(bucket, 10)
            };
            Fig10Series {
                name: spec.name,
                snfa: run(Algorithm::Snfa),
                dp: run(Algorithm::Dp),
            }
        })
        .collect()
}

/// The line-length histograms of the two corpora (top row of Fig. 10).
pub fn fig10_distributions(
    workbench: &Workbench,
    bucket: usize,
) -> Vec<(String, Vec<(usize, usize)>)> {
    vec![
        (
            "Spam Emails Dataset".to_owned(),
            workbench.spam().length_histogram(bucket),
        ),
        (
            "Java Code Dataset".to_owned(),
            workbench.java().length_histogram(bucket),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Batch efficiency
// ---------------------------------------------------------------------------

/// Batch-plane efficiency of one benchmark SemRE: the batched matcher with
/// one session per corpus chunk against the per-call reference plane.
#[derive(Clone, Debug)]
pub struct BatchEfficiencyRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Lines scanned.
    pub lines: usize,
    /// Oracle calls the per-call plane ships to the backend (one per
    /// logical request).
    pub per_call_backend_calls: u64,
    /// Logical requests issued by the batched plane — identical inference
    /// rules, so identical to the per-call count.
    pub logical_requests: u64,
    /// Distinct `(query, start, end)` keys the per-line ledgers resolved.
    /// Never exceeds `per_call_backend_calls`.
    pub unique_keys: u64,
    /// Keys that reached the backend after chunk-level content
    /// deduplication.
    pub backend_keys: u64,
    /// Backend round trips.
    pub batches: u64,
    /// Fraction of submitted keys answered without touching the backend.
    pub dedup_ratio: f64,
    /// Whether the two planes agreed on every line's verdict.
    pub verdicts_agree: bool,
}

impl BatchEfficiencyRow {
    /// Backend calls saved by the batched plane, as a fraction of the
    /// per-call plane's calls.
    pub fn backend_call_reduction(&self) -> f64 {
        if self.per_call_backend_calls == 0 {
            0.0
        } else {
            1.0 - self.backend_keys as f64 / self.per_call_backend_calls as f64
        }
    }

    /// Mean number of keys per backend round trip
    /// ([`BatchStats::mean_batch_size`]).
    pub fn mean_batch_size(&self) -> f64 {
        BatchStats {
            batches: self.batches,
            backend_keys: self.backend_keys,
            ..BatchStats::default()
        }
        .mean_batch_size()
    }
}

/// Measures the batched query plane against the per-call plane on every
/// benchmark SemRE: identical verdicts, ledger dedup within lines, content
/// dedup across the lines of each `chunk_lines`-sized chunk, and round-trip
/// amortization.  Latency is not injected — this experiment is about
/// counts, not wall-clock.
pub fn batch_efficiency(
    config: &ExperimentConfig,
    workbench: &Workbench,
    chunk_lines: usize,
) -> Vec<BatchEfficiencyRow> {
    let chunk_lines = chunk_lines.max(1);
    workbench
        .benchmarks()
        .iter()
        .map(|spec| {
            let corpus = config.prepare(workbench.corpus(spec.dataset));
            let limit = config.max_lines.unwrap_or(usize::MAX);
            let lines: Vec<&String> = corpus.lines().iter().take(limit).collect();

            // Per-call reference: every logical request is a backend call.
            let backend = Instrumented::new(Arc::clone(&spec.oracle));
            let per_call =
                Matcher::with_config(spec.semre.clone(), &backend, MatcherConfig::per_call());
            let construction_probes = backend.stats().calls;
            let mut per_call_verdicts = Vec::with_capacity(lines.len());
            for line in &lines {
                per_call_verdicts.push(per_call.run(line.as_bytes()).matched);
            }
            let per_call_backend_calls = backend.stats().calls - construction_probes;

            // Batched plane: one session per chunk.
            let batched = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
            let mut batched_verdicts = Vec::with_capacity(lines.len());
            let mut logical_requests = 0;
            let mut unique_keys = 0;
            let mut stats = BatchStats::default();
            for chunk in lines.chunks(chunk_lines) {
                let mut session = batched.session();
                for line in chunk {
                    let report = batched.run_in_session(line.as_bytes(), &mut session);
                    batched_verdicts.push(report.matched);
                    logical_requests += report.oracle_calls;
                    unique_keys += report.unique_keys;
                }
                stats = stats.merged(&session.stats());
            }

            BatchEfficiencyRow {
                name: spec.name,
                lines: lines.len(),
                per_call_backend_calls,
                logical_requests,
                unique_keys,
                backend_keys: stats.backend_keys,
                batches: stats.batches,
                dedup_ratio: stats.dedup_ratio(),
                verdicts_agree: per_call_verdicts == batched_verdicts,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Search overhead
// ---------------------------------------------------------------------------

/// Oracle cost of unanchored span search versus anchored membership on one
/// benchmark SemRE.
#[derive(Clone, Debug)]
pub struct SearchOverheadRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Lines measured.
    pub lines: usize,
    /// Backend oracle calls for whole-line `is_match` over the sample.
    pub anchored_backend_calls: u64,
    /// Backend oracle calls for leftmost-earliest `find` over the sample.
    pub search_backend_calls: u64,
    /// Lines whose whole content matched (anchored).
    pub matched_lines: usize,
    /// Lines containing at least one matching span.
    pub spanned_lines: usize,
}

impl SearchOverheadRow {
    /// Oracle-call multiplier of search over anchored matching.
    pub fn overhead(&self) -> f64 {
        if self.anchored_backend_calls == 0 {
            if self.search_backend_calls == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.search_backend_calls as f64 / self.anchored_backend_calls as f64
        }
    }
}

/// Measures the oracle-query overhead of the facade's unanchored `find`
/// (implicit `.*` prefix, all span starts answered in one pass) against
/// anchored `is_match`, per benchmark SemRE.  The sample is capped at
/// `max_lines` lines of at most `max_line_len` bytes — search is quadratic
/// in line length on top of matching — and the caps are echoed in
/// [`SearchOverheadRow::lines`].  Latency is not injected: this experiment
/// is about counts.
pub fn search_overhead(
    config: &ExperimentConfig,
    workbench: &Workbench,
    max_lines: usize,
    max_line_len: usize,
) -> Vec<SearchOverheadRow> {
    use semre::SemRegexBuilder;
    workbench
        .benchmarks()
        .iter()
        .map(|spec| {
            let corpus = workbench.corpus(spec.dataset).truncated_to(
                config
                    .max_line_len
                    .unwrap_or(max_line_len)
                    .min(max_line_len),
            );
            let limit = config.max_lines.unwrap_or(max_lines).min(max_lines);
            let lines: Vec<&String> = corpus.lines().iter().take(limit).collect();

            let backend = Arc::new(Instrumented::new(Arc::clone(&spec.oracle)));
            let re = SemRegexBuilder::new()
                .build_semre_shared(spec.semre.clone(), backend.clone())
                .expect("benchmark SemREs compile");

            backend.reset();
            let matched_lines = lines
                .iter()
                .filter(|line| re.is_match(line.as_bytes()))
                .count();
            let anchored_backend_calls = backend.stats().calls;

            backend.reset();
            let spanned_lines = lines
                .iter()
                .filter(|line| re.find(line.as_bytes()).is_some())
                .count();
            let search_backend_calls = backend.stats().calls;

            assert!(
                spanned_lines >= matched_lines,
                "{}: a whole-line match is itself a span",
                spec.name
            );
            SearchOverheadRow {
                name: spec.name,
                lines: lines.len(),
                anchored_backend_calls,
                search_backend_calls,
                matched_lines,
                spanned_lines,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Theorem 4.1 and Section 4.2
// ---------------------------------------------------------------------------

/// Query-complexity measurements for both algorithms (Theorem 4.1).
#[derive(Clone, Debug)]
pub struct QueryComplexityResult {
    /// Points measured for the query-graph matcher.
    pub snfa: Vec<QueryComplexityPoint>,
    /// Points measured for the DP baseline.
    pub dp: Vec<QueryComplexityPoint>,
}

/// Measures oracle-call growth on the adversarial `Σ*⟨q⟩Σ*` / `0^m 1^m`
/// family for both algorithms.
pub fn query_complexity_experiment(ms: &[usize]) -> QueryComplexityResult {
    QueryComplexityResult {
        snfa: query_complexity::measure(MatcherKind::QueryGraph, 1, ms),
        dp: query_complexity::measure(MatcherKind::Baseline, 1, ms),
    }
}

/// One measurement of the triangle-finding reduction (Section 4.2).
#[derive(Clone, Debug)]
pub struct TriangleResult {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges of the random graph.
    pub edges: usize,
    /// Whether a triangle exists (direct detection).
    pub direct: bool,
    /// Whether the SemRE matcher found a triangle.
    pub via_semre: bool,
    /// Wall-clock time of the SemRE-based detection.
    pub semre_time: Duration,
    /// Wall-clock time of the direct cubic detection.
    pub direct_time: Duration,
}

/// Runs the triangle reduction on Erdős–Rényi graphs of the given sizes.
pub fn triangle_experiment(
    sizes: &[usize],
    edge_probability: f64,
    seed: u64,
) -> Vec<TriangleResult> {
    sizes
        .iter()
        .map(|&n| {
            let graph = Graph::random(n, edge_probability, seed ^ n as u64);
            let direct_start = std::time::Instant::now();
            let direct = graph.has_triangle_direct();
            let direct_time = direct_start.elapsed();
            let semre_start = std::time::Instant::now();
            let via_semre = triangle::has_triangle_via_semre(&graph);
            let semre_time = semre_start.elapsed();
            TriangleResult {
                vertices: n,
                edges: graph.num_edges(),
                direct,
                via_semre,
                semre_time,
                direct_time,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Oracle-call counts for one matcher configuration on one workload
/// (the Table 3 / Note A.4 ablation).
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Description of the configuration.
    pub config: &'static str,
    /// Total oracle calls over the workload.
    pub oracle_calls: u64,
    /// Total matching time.
    pub total_time: Duration,
    /// Number of lines that matched (identical across configurations).
    pub matched: usize,
}

/// Compares matcher configurations (lazy + pruned vs eager) on a workload
/// of lines, reporting oracle calls and wall-clock time.
pub fn ablation<O: Oracle + Clone>(
    semre: &semre_syntax::Semre,
    oracle: O,
    lines: &[String],
) -> Vec<AblationRow> {
    use semre_core::MatcherConfig;
    // All configurations stay on the per-call plane so the comparison
    // isolates the algorithmic optimizations (Note A.4), not the batch
    // transport's deduplication.
    let configs: [(&'static str, MatcherConfig); 4] = [
        (
            "optimized (prefilter + prune + lazy)",
            MatcherConfig::per_call(),
        ),
        (
            "no skeleton prefilter",
            MatcherConfig {
                skeleton_prefilter: false,
                literal_prescan: false,
                ..MatcherConfig::per_call()
            },
        ),
        (
            "no co-reachability pruning",
            MatcherConfig {
                prune_coreachable: false,
                ..MatcherConfig::per_call()
            },
        ),
        ("fully eager", MatcherConfig::eager()),
    ];
    configs
        .into_iter()
        .map(|(name, config)| {
            let instrumented = Instrumented::new(oracle.clone());
            let matcher = Matcher::with_config(semre.clone(), &instrumented, config);
            let started = std::time::Instant::now();
            let matched = lines
                .iter()
                .filter(|line| matcher.is_match(line.as_bytes()))
                .count();
            AblationRow {
                config: name,
                oracle_calls: instrumented.stats().calls,
                total_time: started.elapsed(),
                matched,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_oracle::SetOracle;
    use semre_syntax::examples;

    fn smoke() -> (ExperimentConfig, Workbench) {
        let config = ExperimentConfig::smoke();
        let workbench = config.workbench();
        (config, workbench)
    }

    #[test]
    fn table1_has_nine_rows_with_matches() {
        let (config, workbench) = smoke();
        let rows = table1(&config, &workbench);
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().any(|r| r.matched > 0));
        for row in &rows {
            assert!(row.size > 5);
            assert!(row.lines > 0);
            assert!(row.matched <= row.lines);
        }
    }

    #[test]
    fn table2_shows_snfa_ahead_on_oracle_calls() {
        let (config, workbench) = smoke();
        let rows = table2(&config, &workbench);
        assert_eq!(rows.len(), 9);
        let summary = summarize_table2(&rows);
        // The SNFA matcher must never need more oracle calls in aggregate.
        assert!(summary.oracle_call_reduction >= 0.0, "summary: {summary:?}");
        assert!(summary.geomean_speedup_total > 0.0);
        for row in &rows {
            assert_eq!(
                row.snfa.lines, row.dp.lines,
                "{}: smoke config should not time out",
                row.name
            );
            assert_eq!(
                row.snfa.matched, row.dp.matched,
                "{}: algorithms disagree",
                row.name
            );
        }
    }

    #[test]
    fn fig10_produces_series_for_most_specs() {
        let (config, workbench) = smoke();
        let series = fig10(&config, &workbench, 50);
        assert_eq!(series.len(), 9);
        assert!(series
            .iter()
            .any(|s| !s.snfa.is_empty() && !s.dp.is_empty()));
        let dist = fig10_distributions(&workbench, 100);
        assert_eq!(dist.len(), 2);
        assert!(dist[0].1.iter().map(|&(_, c)| c).sum::<usize>() > 0);
    }

    #[test]
    fn batch_efficiency_meets_the_plane_invariants() {
        let (config, workbench) = smoke();
        let rows = batch_efficiency(&config, &workbench, 64);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(row.verdicts_agree, "{}: planes disagree", row.name);
            assert_eq!(
                row.logical_requests, row.per_call_backend_calls,
                "{}: identical inference rules must issue identical requests",
                row.name
            );
            assert!(
                row.unique_keys <= row.per_call_backend_calls,
                "{}: ledger resolved {} unique keys but per-call issued {} calls",
                row.name,
                row.unique_keys,
                row.per_call_backend_calls
            );
            assert!(
                row.backend_keys <= row.unique_keys,
                "{}: content dedup cannot increase keys ({} vs {})",
                row.name,
                row.backend_keys,
                row.unique_keys
            );
            assert!(
                row.batches <= row.backend_keys.max(1),
                "{}: more round trips than backend keys",
                row.name
            );
            assert!((0.0..=1.0).contains(&row.dedup_ratio), "{}", row.name);
            assert!(row.backend_call_reduction() >= 0.0, "{}", row.name);
        }
        // Across the whole bench set the chunk sessions must find real
        // duplication to absorb.
        assert!(
            rows.iter().any(|r| r.dedup_ratio > 0.0),
            "no benchmark deduplicated anything: {rows:?}"
        );
    }

    #[test]
    fn query_complexity_runs_for_both_algorithms() {
        let result = query_complexity_experiment(&[2, 4]);
        assert_eq!(result.snfa.len(), 2);
        assert_eq!(result.dp.len(), 2);
        assert!(result.snfa[1].oracle_calls > result.snfa[0].oracle_calls);
        // The baseline also pays for the empty substrings, so it is never
        // cheaper than the query-graph matcher here.
        for (s, d) in result.snfa.iter().zip(&result.dp) {
            assert!(d.oracle_calls >= s.oracle_calls);
        }
    }

    #[test]
    fn triangle_experiment_agrees_with_direct() {
        let results = triangle_experiment(&[5, 7], 0.4, 99);
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.direct, r.via_semre, "disagreement at n = {}", r.vertices);
        }
    }

    #[test]
    fn ablation_orders_configurations_sensibly() {
        let mut oracle = SetOracle::new();
        oracle.insert("City", "Paris");
        oracle.insert("Celebrity", "Paris Hilton");
        let lines: Vec<String> = vec![
            "Paris Hilton".to_owned(),
            "Taylor Swift".to_owned(),
            "a completely unrelated line".to_owned(),
        ];
        let rows = ablation(&examples::r_paris_hilton(), oracle, &lines);
        assert_eq!(rows.len(), 4);
        let optimized = rows[0].oracle_calls;
        let eager = rows[3].oracle_calls;
        assert!(optimized <= eager, "optimized {optimized} > eager {eager}");
        // All configurations agree on which lines match.
        assert!(rows.iter().all(|r| r.matched == rows[0].matched));
    }
}
