//! Prints the paper's tables and figure series from the synthetic
//! workloads.
//!
//! ```text
//! experiments [OPTIONS] [EXPERIMENT...]
//!
//!   EXPERIMENT        table1 | table2 | fig10-dist | fig10 |
//!                     query-complexity | triangle | ablation |
//!                     batch-efficiency | search-overhead |
//!                     prefilter-speedup | all
//!                     (default: all)
//!
//!   --lines N         corpus lines per dataset          (default 4000)
//!   --budget SECS     time budget per (SemRE, algorithm) (default 20)
//!   --max-line-len N  drop lines longer than N bytes     (default none)
//!   --seed N          corpus generation seed
//!   --quick           small corpora and short budgets (smoke test)
//! ```
//!
//! Absolute timings depend on the machine and on the synthetic oracle
//! latency model; the *relative* picture (who wins, by how much, where the
//! oracle dominates) is what reproduces the paper.  See EXPERIMENTS.md.

use std::time::Duration;

use semre_bench::harness::{self, ExperimentConfig};
use semre_workloads::Workbench;

fn main() {
    let mut config = ExperimentConfig {
        max_line_len: Some(400),
        ..ExperimentConfig::default()
    };
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lines" => {
                let n = expect_number(args.next(), "--lines");
                config.spam_lines = n;
                config.java_lines = n;
            }
            "--budget" => {
                config.time_budget =
                    Duration::from_secs(expect_number(args.next(), "--budget") as u64);
            }
            "--max-line-len" => {
                config.max_line_len = Some(expect_number(args.next(), "--max-line-len"));
            }
            "--seed" => {
                config.seed = expect_number(args.next(), "--seed") as u64;
            }
            "--quick" => {
                config = ExperimentConfig::smoke();
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            other => experiments.push(other.to_owned()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "table2",
            "batch-efficiency",
            "search-overhead",
            "prefilter-speedup",
            "fig10-dist",
            "fig10",
            "query-complexity",
            "triangle",
            "ablation",
        ]
        .map(str::to_owned)
        .to_vec();
    }

    println!("# SemRE membership-testing experiments");
    println!(
        "# corpora: {} spam lines, {} java lines (seed {}), budget {:?} per run, max line length {:?}",
        config.spam_lines, config.java_lines, config.seed, config.time_budget, config.max_line_len
    );
    let workbench = config.workbench();

    for experiment in &experiments {
        match experiment.as_str() {
            "table1" => table1(&config, &workbench),
            "table2" => table2(&config, &workbench),
            "batch-efficiency" => batch_efficiency(&config, &workbench),
            "search-overhead" => search_overhead(&config, &workbench),
            "prefilter-speedup" => prefilter_speedup(&config),
            "fig10-dist" => fig10_dist(&workbench),
            "fig10" => fig10(&config, &workbench),
            "query-complexity" => query_complexity(),
            "triangle" => triangle(),
            "ablation" => ablation(&workbench),
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        }
    }
}

fn expect_number(value: Option<String>, flag: &str) -> usize {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    })
}

fn table1(config: &ExperimentConfig, workbench: &Workbench) {
    println!("\n## Table 1: benchmark SemREs and their statistics");
    println!(
        "{:<8} {:<8} {:<22} {:>6} {:>10} {:>10}",
        "Dataset", "Name", "Oracle", "|r|", "Lines", "Matched"
    );
    for row in harness::table1(config, workbench) {
        println!(
            "{:<8} {:<8} {:<22} {:>6} {:>10} {:>10}",
            row.dataset, row.name, row.oracle, row.size, row.lines, row.matched
        );
    }
}

fn table2(config: &ExperimentConfig, workbench: &Workbench) {
    println!("\n## Table 2: SemRE matching performance (SNFA vs DP baseline)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "SemRE",
        "RTtot SNFA",
        "RTtot DP",
        "RTmat SNFA",
        "RTmat DP",
        "calls SNFA",
        "calls DP",
        "of SNFA",
        "of DP",
        "qlen SNFA",
        "qlen DP",
        "speedup"
    );
    let rows = harness::table2(config, workbench);
    for row in &rows {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3} {:>10.3} {:>8.1}x",
            row.name,
            row.snfa.rt_total_ms,
            row.dp.rt_total_ms,
            row.snfa.rt_matched_ms,
            row.dp.rt_matched_ms,
            row.snfa.oracle_calls_per_line,
            row.dp.oracle_calls_per_line,
            row.snfa.oracle_fraction,
            row.dp.oracle_fraction,
            row.snfa.query_chars_per_line,
            row.dp.query_chars_per_line,
            row.speedup_total(),
        );
        if row.snfa.timed_out || row.dp.timed_out {
            println!(
                "         (budget hit: SNFA processed {} lines, DP processed {} lines)",
                row.snfa.lines, row.dp.lines
            );
        }
    }
    let summary = harness::summarize_table2(&rows);
    println!("\n### Headline aggregates (paper: 101x total, 12x matched, 51% fewer calls, 3x less oracle time)");
    println!(
        "geometric-mean speedup, whole dataset : {:>8.1}x",
        summary.geomean_speedup_total
    );
    println!(
        "geometric-mean speedup, matched lines : {:>8.1}x",
        summary.geomean_speedup_matched
    );
    println!(
        "oracle-call reduction (SNFA vs DP)    : {:>8.1}%",
        summary.oracle_call_reduction * 100.0
    );
    println!(
        "oracle-time ratio (DP / SNFA)         : {:>8.1}x",
        summary.oracle_time_ratio
    );
}

fn batch_efficiency(config: &ExperimentConfig, workbench: &Workbench) {
    println!("\n## Batched query plane: per-call calls vs ledger keys vs backend keys (chunked sessions)");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12} {:>9} {:>12} {:>9} {:>8}",
        "SemRE",
        "lines",
        "per-call",
        "unique keys",
        "backend",
        "batches",
        "mean batch",
        "dedup",
        "agree"
    );
    for row in harness::batch_efficiency(config, workbench, 256) {
        let mean_batch = row.mean_batch_size();
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12} {:>9} {:>12.2} {:>8.1}% {:>8}",
            row.name,
            row.lines,
            row.per_call_backend_calls,
            row.unique_keys,
            row.backend_keys,
            row.batches,
            mean_batch,
            row.dedup_ratio * 100.0,
            if row.verdicts_agree { "yes" } else { "NO" },
        );
        assert!(
            row.verdicts_agree,
            "{}: batched and per-call planes disagree",
            row.name
        );
    }
}

fn search_overhead(config: &ExperimentConfig, workbench: &Workbench) {
    const MAX_LINES: usize = 60;
    const MAX_LINE_LEN: usize = 100;
    println!(
        "\n## Search overhead: oracle calls of unanchored `find` vs anchored `is_match` \
         (≤ {MAX_LINES} lines of ≤ {MAX_LINE_LEN} bytes per SemRE)"
    );
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "SemRE", "lines", "anchored", "search", "matched", "spanned", "overhead"
    );
    for row in harness::search_overhead(config, workbench, MAX_LINES, MAX_LINE_LEN) {
        println!(
            "{:<8} {:>8} {:>14} {:>14} {:>10} {:>10} {:>9.2}x",
            row.name,
            row.lines,
            row.anchored_backend_calls,
            row.search_backend_calls,
            row.matched_lines,
            row.spanned_lines,
            row.overhead(),
        );
    }
}

fn prefilter_speedup(config: &ExperimentConfig) {
    use semre_bench::trajectory::{self, TrajectoryConfig};
    println!("\n## Prefilter speedup: lazy-DFA vs NFA skeleton simulation (ns/line, best-of runs)");
    let tconfig = if config.max_lines.is_some() {
        TrajectoryConfig::quick()
    } else {
        TrajectoryConfig::full()
    };
    let trajectory = trajectory::measure(&tconfig);
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>8}",
        "SemRE", "skel NFA", "skel DFA", "speedup", "srch NFA", "srch DFA", "speedup", "equiv"
    );
    for b in &trajectory.benches {
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>8.1}x {:>12.0} {:>12.0} {:>8.1}x {:>8}",
            b.name,
            b.prefilter.reference_ns,
            b.prefilter.fast_ns,
            b.prefilter.speedup(),
            b.search_prefilter.reference_ns,
            b.search_prefilter.fast_ns,
            b.search_prefilter.speedup(),
            if b.equivalent { "yes" } else { "NO" },
        );
        assert!(b.equivalent, "{}: prefilter engines disagree", b.name);
    }
    println!(
        "\ngeomean speedup: {:.2}x anchored, {:.2}x search; end-to-end is_match {:.2}x",
        trajectory.geomean_prefilter_speedup(),
        trajectory.geomean_search_prefilter_speedup(),
        trajectory.geomean_is_match_speedup()
    );
}

fn fig10_dist(workbench: &Workbench) {
    println!("\n## Fig. 10 (top): line length distribution");
    for (name, histogram) in harness::fig10_distributions(workbench, 100) {
        println!("\n{name}");
        println!("{:<12} {:>10}", "Length", "Frequency");
        for (start, count) in histogram {
            println!("{:<12} {:>10}", format!("{}-{}", start, start + 99), count);
        }
    }
}

fn fig10(config: &ExperimentConfig, workbench: &Workbench) {
    println!("\n## Fig. 10 (grid): median running time vs line length (lines ≤ 200 chars)");
    for series in harness::fig10(config, workbench, 25) {
        println!("\n{}", series.name);
        println!(
            "{:<12} {:>14} {:>14} {:>10}",
            "Length", "SNFA (ms)", "DP (ms)", "Lines"
        );
        let mut by_bucket: std::collections::BTreeMap<usize, (Option<f64>, Option<f64>, usize)> =
            std::collections::BTreeMap::new();
        for (start, median, lines) in &series.snfa {
            by_bucket.entry(*start).or_insert((None, None, 0)).0 = Some(*median);
            by_bucket.get_mut(start).expect("just inserted").2 = *lines;
        }
        for (start, median, lines) in &series.dp {
            let entry = by_bucket.entry(*start).or_insert((None, None, 0));
            entry.1 = Some(*median);
            if entry.2 == 0 {
                entry.2 = *lines;
            }
        }
        for (start, (snfa, dp, lines)) in by_bucket {
            println!(
                "{:<12} {:>14} {:>14} {:>10}",
                format!("{}-{}", start, start + 24),
                snfa.map_or("-".to_owned(), |v| format!("{v:.4}")),
                dp.map_or("-".to_owned(), |v| format!("{v:.4}")),
                lines
            );
        }
    }
}

fn query_complexity() {
    println!(
        "\n## Theorem 4.1: oracle queries needed on the adversarial family Σ*⟨q⟩Σ*, w = 0^m 1^m"
    );
    println!(
        "{:<8} {:<8} {:>14} {:>14} {:>16}",
        "m", "|w|", "SNFA calls", "DP calls", "lower bound"
    );
    let result = harness::query_complexity_experiment(&[4, 8, 16, 32, 64]);
    for (s, d) in result.snfa.iter().zip(&result.dp) {
        println!(
            "{:<8} {:<8} {:>14} {:>14} {:>16}",
            s.m,
            s.input_len,
            s.oracle_calls,
            d.oracle_calls,
            s.input_len * (s.input_len + 1) / 2
        );
    }
}

fn triangle() {
    println!("\n## Section 4.2: triangle finding via SemRE matching (G(n, 0.15))");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>14} {:>14}",
        "n", "edges", "direct", "via SemRE", "SemRE (ms)", "direct (µs)"
    );
    for r in harness::triangle_experiment(&[8, 12, 16, 24, 32], 0.15, 20250613) {
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>14.2} {:>14.2}",
            r.vertices,
            r.edges,
            r.direct,
            r.via_semre,
            r.semre_time.as_secs_f64() * 1e3,
            r.direct_time.as_secs_f64() * 1e6
        );
        assert_eq!(
            r.direct, r.via_semre,
            "reduction disagrees with direct detection"
        );
    }
}

fn ablation(workbench: &Workbench) {
    println!("\n## Ablation: matcher configurations (oracle calls / time, Note A.4)");
    // Non-nested workload: the spam,1 SemRE over spam subject lines.
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let lines: Vec<String> = workbench
        .spam()
        .lines()
        .iter()
        .filter(|l| l.len() <= 200)
        .take(400)
        .cloned()
        .collect();
    println!("\nworkload: spam,1 over {} spam lines", lines.len());
    println!(
        "{:<42} {:>14} {:>12} {:>10}",
        "configuration", "oracle calls", "time (ms)", "matched"
    );
    for row in harness::ablation(&spec.semre, spec.oracle.clone(), &lines) {
        println!(
            "{:<42} {:>14} {:>12.2} {:>10}",
            row.config,
            row.oracle_calls,
            row.total_time.as_secs_f64() * 1e3,
            row.matched
        );
    }
    // Nested workload: the Paris Hilton SemRE over celebrity-ish lines.
    let mut oracle = semre_oracle::SetOracle::new();
    oracle.insert_all("City", ["Paris", "Houston", "London"]);
    oracle.insert_all(
        "Celebrity",
        ["Paris Hilton", "London Breed", "Taylor Swift"],
    );
    let lines: Vec<String> = [
        "Paris Hilton",
        "Taylor Swift",
        "London Breed",
        "Houston Rockets",
        "a plain line",
        "the celebrity Paris Hilton arrived",
        "nothing here",
        "Paris Metro",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!(
        "\nworkload: nested Paris-Hilton SemRE over {} lines",
        lines.len()
    );
    println!(
        "{:<42} {:>14} {:>12} {:>10}",
        "configuration", "oracle calls", "time (ms)", "matched"
    );
    for row in harness::ablation(
        &semre_syntax::Semre::padded(semre_syntax::examples::r_paris_hilton()),
        oracle,
        &lines,
    ) {
        println!(
            "{:<42} {:>14} {:>12.2} {:>10}",
            row.config,
            row.oracle_calls,
            row.total_time.as_secs_f64() * 1e3,
            row.matched
        );
    }
}
