//! Emits the tracked perf trajectory as `BENCH_PR10.json`.
//!
//! ```text
//! bench_trajectory [--quick] [--check] [--out PATH]
//!
//!   --quick      reduced sample sizes and repetitions (CI smoke runs)
//!   --check      fail (exit 1) when a tracked geomean drops below its
//!                stored regression floor (see `Floors::tracked`)
//!   --out PATH   output file (default BENCH_PR10.json)
//! ```
//!
//! Prints a human-readable summary table and writes the JSON document the
//! next PR regresses against.  See EXPERIMENTS.md ("prefilter-speedup",
//! "prescan-speedup", "stream-throughput", "tree-scan", "overlap",
//! "persist-dedupe", "tiered-cost", "skewed-tree").

use semre_bench::trajectory::{self, Floors, TrajectoryConfig};

fn main() {
    let mut out_path = "BENCH_PR10.json".to_owned();
    let mut config = TrajectoryConfig::full();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config = TrajectoryConfig::quick(),
            "--check" => check = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("measuring trajectory ({config:?}) ...");
    let trajectory = trajectory::measure(&config);

    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "SemRE",
        "skel NFA ns",
        "skel DFA ns",
        "speedup",
        "prescan ns",
        "speedup",
        "match NFA",
        "match DFA",
        "speedup",
        "equiv"
    );
    for b in &trajectory.benches {
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>7.1}x {:>12.0} {:>7.1}x {:>12.0} {:>12.0} {:>7.2}x {:>8}",
            b.name,
            b.prefilter.reference_ns,
            b.prefilter.fast_ns,
            b.prefilter.speedup(),
            b.prescan.fast_ns,
            b.prescan.speedup(),
            b.is_match.reference_ns,
            b.is_match.fast_ns,
            b.is_match.speedup(),
            if b.equivalent { "yes" } else { "NO" },
        );
    }
    println!(
        "\ngeomean prefilter speedup (DFA vs NFA): {:.2}x (anchored), {:.2}x (search)",
        trajectory.geomean_prefilter_speedup(),
        trajectory.geomean_search_prefilter_speedup()
    );
    println!(
        "geomean prescan speedup (literal-bearing prefilter stage): {:.2}x",
        trajectory.geomean_prescan_speedup()
    );
    println!(
        "geomean stream ratio (in-memory / streaming):              {:.2}x",
        trajectory.geomean_stream_ratio()
    );
    println!(
        "geomean end-to-end is_match speedup:    {:.2}x",
        trajectory.geomean_is_match_speedup()
    );
    let tree = &trajectory.tree_scan;
    println!(
        "tree-scan ({} files, {} lines): {:.0} ns/line sequential, {:.0} ns/line on 4 workers ({:.2}x), \
         backend keys {} shared vs {} per-file, equivalent={}",
        tree.files,
        tree.lines,
        tree.parallel.reference_ns,
        tree.parallel.fast_ns,
        tree.parallel.speedup(),
        tree.shared_backend_keys,
        tree.per_file_backend_keys,
        tree.equivalent
    );

    let skew = &trajectory.skewed_tree;
    println!(
        "skewed-tree ({} files, {} lines, giant {} of {} bytes, split {} bytes, {} ranges): \
         {:.0} ns/line whole-file, {:.0} ns/line split ({:.2}x) on 4 workers, equivalent={}",
        skew.files,
        skew.lines,
        skew.giant_bytes,
        skew.total_bytes,
        skew.split_bytes,
        skew.ranges,
        skew.split.reference_ns,
        skew.split.fast_ns,
        skew.speedup(),
        skew.equivalent
    );
    for (workers, ns) in &skew.worker_sweep {
        println!("  split-on contention sweep: {workers} workers, {ns:.0} ns/line");
    }

    let overlap = &trajectory.overlap;
    println!(
        "overlap ({} us/batch, {} resolver threads):",
        overlap.per_batch_latency_us, overlap.oracle_threads
    );
    for b in &overlap.benches {
        println!(
            "  {:<8} {:>12.0} ns/line sync, {:>12.0} ns/line overlapped ({:.2}x), \
             suspends={} resumes={} backend_keys={} equivalent={}",
            b.name,
            b.overlapped.reference_ns,
            b.overlapped.fast_ns,
            b.overlapped.speedup(),
            b.suspends,
            b.resumes,
            b.backend_keys,
            b.equivalent
        );
    }
    println!(
        "geomean overlap speedup (overlapped vs synchronous): {:.2}x",
        overlap.geomean_speedup()
    );

    let persist = &trajectory.persist;
    println!(
        "persist ({} files, {} lines): {:.0} ns/line cold, {:.0} ns/line warm ({:.2}x), \
         backend keys {} cold vs {} warm, {} persisted hits, {} replayed, log {} bytes, equivalent={}",
        persist.files,
        persist.lines,
        persist.warm_vs_cold.reference_ns,
        persist.warm_vs_cold.fast_ns,
        persist.warm_vs_cold.speedup(),
        persist.cold_backend_keys,
        persist.warm_backend_keys,
        persist.warm_persisted_hits,
        persist.replayed,
        persist.log_bytes,
        persist.equivalent
    );

    let tiered = &trajectory.tiered_cost;
    println!(
        "tiered-cost ({} files, {} lines): {:.0} ns/line flat, {:.0} ns/line tiered ({:.2}x), \
         backend keys {} flat vs {} authoritative ({:.2}x reduction, {} cheap hits), equivalent={}",
        tiered.files,
        tiered.lines,
        tiered.tiered_vs_flat.reference_ns,
        tiered.tiered_vs_flat.fast_ns,
        tiered.tiered_vs_flat.speedup(),
        tiered.flat_backend_keys,
        tiered.tiered_authority_keys,
        tiered.key_reduction(),
        tiered.tiered_cheap_hits,
        tiered.equivalent
    );

    assert!(
        trajectory.all_equivalent()
            && trajectory.tree_scan.equivalent
            && trajectory.skewed_tree.equivalent
            && trajectory.overlap.equivalent()
            && trajectory.persist.equivalent
            && trajectory.tiered_cost.equivalent,
        "equivalence check failed — the trajectory must never ship with a verdict change"
    );

    let json = trajectory::to_json(&trajectory);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if check {
        match trajectory.check(&Floors::tracked()) {
            Ok(()) => eprintln!("--check: all tracked geomeans above their floors"),
            Err(violations) => {
                for violation in violations {
                    eprintln!("--check: {violation}");
                }
                std::process::exit(1);
            }
        }
    }
}
