//! A minimal fixed-budget micro-benchmark runner.
//!
//! The workspace builds without external crates, so the `benches/` targets
//! cannot use Criterion; this runner covers what they need: a warm-up /
//! calibration pass, a bounded measurement loop, and a one-line report of
//! mean and best iteration time.  Timings are indicative — the `experiments`
//! binary remains the reference for the paper's tables.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default wall-clock budget spent measuring one benchmark id.
pub const DEFAULT_BUDGET: Duration = Duration::from_millis(200);

/// Runs `f` repeatedly for roughly `budget` and prints a `group/id` line
/// with the iteration count, mean, and best time.
pub fn bench_with_budget<R>(group: &str, id: &str, budget: Duration, mut f: impl FnMut() -> R) {
    // One calibration iteration (also serves as warm-up).
    let started = Instant::now();
    black_box(f());
    let first = started.elapsed().max(Duration::from_nanos(1));

    let iters = (budget.as_nanos() / first.as_nanos()).clamp(1, 100_000) as u32;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let started = Instant::now();
        black_box(f());
        let elapsed = started.elapsed();
        total += elapsed;
        best = best.min(elapsed);
    }
    let mean = total / iters;
    println!("{group}/{id:<40} {iters:>7} iters   mean {mean:>12.3?}   best {best:>12.3?}");
}

/// [`bench_with_budget`] with the default budget.
pub fn bench<R>(group: &str, id: &str, f: impl FnMut() -> R) {
    bench_with_budget(group, id, DEFAULT_BUDGET, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_completes_and_is_cheap() {
        let started = Instant::now();
        bench_with_budget("micro", "noop", Duration::from_millis(5), || 1 + 1);
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
