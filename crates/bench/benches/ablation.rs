//! Micro-bench for the design-choice ablations called out in DESIGN.md
//! (Note A.4 of the paper): the fully optimized matcher configuration
//! (skeleton prefilter + co-reachability pruning + lazy oracle discharge)
//! against the eager configuration, on a non-nested and a nested workload.

use semre_bench::{micro, ExperimentConfig};
use semre_core::{Matcher, MatcherConfig};
use semre_oracle::SetOracle;
use semre_syntax::{examples, Semre};

fn main() {
    let configs: [(&str, MatcherConfig); 4] = [
        ("optimized", MatcherConfig::default()),
        ("per_call", MatcherConfig::per_call()),
        (
            "no_prune",
            MatcherConfig {
                prune_coreachable: false,
                ..MatcherConfig::default()
            },
        ),
        ("eager", MatcherConfig::eager()),
    ];

    // Non-nested workload: spam,1 over a slice of the spam corpus.
    let config = ExperimentConfig {
        spam_lines: 400,
        java_lines: 50,
        ..ExperimentConfig::default()
    };
    let workbench = config.workbench();
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let lines: Vec<String> = workbench
        .spam()
        .lines()
        .iter()
        .filter(|l| l.len() <= 120)
        .take(60)
        .cloned()
        .collect();
    for (name, matcher_config) in configs {
        let matcher = Matcher::with_config(spec.semre.clone(), spec.oracle.clone(), matcher_config);
        micro::bench("ablation", &format!("spam1/{name}"), || {
            lines
                .iter()
                .filter(|l| matcher.is_match(l.as_bytes()))
                .count()
        });
    }

    // Nested workload: the Paris Hilton SemRE (rule Bc / LOQ machinery).
    let mut oracle = SetOracle::new();
    oracle.insert_all("City", ["Paris", "Houston", "London"]);
    oracle.insert_all("Celebrity", ["Paris Hilton", "London Breed"]);
    let nested = Semre::padded(examples::r_paris_hilton());
    let nested_lines: Vec<String> = [
        "breaking: Paris Hilton spotted downtown",
        "Houston traffic report for tuesday",
        "nothing interesting happened today at all",
        "mayor London Breed announced the budget",
        "Paris Metro expands line fourteen",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for (name, matcher_config) in configs {
        let matcher = Matcher::with_config(nested.clone(), oracle.clone(), matcher_config);
        micro::bench("ablation", &format!("paris_hilton/{name}"), || {
            nested_lines
                .iter()
                .filter(|l| matcher.is_match(l.as_bytes()))
                .count()
        });
    }
}
