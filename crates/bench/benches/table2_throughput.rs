//! Criterion bench behind Table 2: per-line matching throughput of the
//! query-graph (SNFA) matcher vs the dynamic-programming baseline, for each
//! of the nine benchmark SemREs.
//!
//! Oracle latency is *not* injected here (Criterion measures the pure
//! algorithmic cost); the `experiments` binary reports the latency-inclusive
//! numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semre_bench::ExperimentConfig;
use semre_core::{DpMatcher, Matcher};

fn bench_table2(c: &mut Criterion) {
    let config = ExperimentConfig { spam_lines: 600, java_lines: 600, ..ExperimentConfig::default() };
    let workbench = config.workbench();
    let mut group = c.benchmark_group("table2_throughput");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));

    for spec in workbench.benchmarks() {
        // A fixed sample of short-ish lines keeps each iteration bounded
        // while still exercising matches and non-matches.
        let lines: Vec<&String> = workbench
            .corpus(spec.dataset)
            .lines()
            .iter()
            .filter(|l| l.len() <= 120)
            .take(40)
            .collect();
        let snfa = Matcher::new(spec.semre.clone(), spec.oracle.clone());
        group.bench_with_input(BenchmarkId::new("snfa", spec.name), &lines, |b, lines| {
            b.iter(|| lines.iter().filter(|l| snfa.is_match(l.as_bytes())).count())
        });
        let dp = DpMatcher::new(spec.semre.clone(), spec.oracle.clone());
        group.bench_with_input(BenchmarkId::new("dp", spec.name), &lines, |b, lines| {
            b.iter(|| lines.iter().filter(|l| dp.is_match(l.as_bytes())).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
