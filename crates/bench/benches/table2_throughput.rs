//! Micro-bench behind Table 2: per-line matching throughput of the
//! query-graph (SNFA) matcher vs the dynamic-programming baseline, for each
//! of the nine benchmark SemREs.
//!
//! Oracle latency is *not* injected here (the runner measures the pure
//! algorithmic cost); the `experiments` binary reports the latency-inclusive
//! numbers.

use semre_bench::{micro, ExperimentConfig};
use semre_core::{DpMatcher, Matcher};

fn main() {
    let config = ExperimentConfig {
        spam_lines: 600,
        java_lines: 600,
        ..ExperimentConfig::default()
    };
    let workbench = config.workbench();

    for spec in workbench.benchmarks() {
        // A fixed sample of short-ish lines keeps each iteration bounded
        // while still exercising matches and non-matches.
        let lines: Vec<&String> = workbench
            .corpus(spec.dataset)
            .lines()
            .iter()
            .filter(|l| l.len() <= 120)
            .take(40)
            .collect();
        let snfa = Matcher::new(spec.semre.clone(), spec.oracle.clone());
        micro::bench("table2_throughput", &format!("snfa/{}", spec.name), || {
            lines.iter().filter(|l| snfa.is_match(l.as_bytes())).count()
        });
        let dp = DpMatcher::new(spec.semre.clone(), spec.oracle.clone());
        micro::bench("table2_throughput", &format!("dp/{}", spec.name), || {
            lines.iter().filter(|l| dp.is_match(l.as_bytes())).count()
        });
    }
}
