//! Micro-bench for the facade's unanchored span search: wall-clock and
//! oracle-call cost of `SemRegex::find` against anchored
//! `SemRegex::is_match` on benchmark SemREs, plus `find_iter` extraction of
//! every span.  The count-level comparison across all nine benchmarks lives
//! in the `search-overhead` experiment (`cargo run --bin experiments --
//! search-overhead`).

use std::sync::Arc;

use semre::SemRegexBuilder;
use semre_bench::{micro, ExperimentConfig};

fn main() {
    let config = ExperimentConfig {
        spam_lines: 400,
        java_lines: 400,
        ..ExperimentConfig::default()
    };
    let workbench = config.workbench();

    for rule in ["spam,1", "edom", "pass"] {
        let spec = workbench.benchmark(rule).expect("known benchmark");
        let lines: Vec<String> = workbench
            .corpus(spec.dataset)
            .truncated_to(100)
            .lines()
            .iter()
            .take(40)
            .cloned()
            .collect();
        let re = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .expect("benchmark SemREs compile");

        let tag = rule.replace(',', "");
        micro::bench("search-overhead", &format!("{tag}/is_match"), || {
            lines.iter().filter(|l| re.is_match(l.as_bytes())).count()
        });
        micro::bench("search-overhead", &format!("{tag}/find"), || {
            lines
                .iter()
                .filter(|l| re.find(l.as_bytes()).is_some())
                .count()
        });
        micro::bench("search-overhead", &format!("{tag}/find_iter"), || {
            lines
                .iter()
                .map(|l| re.find_iter(l.as_bytes()).count())
                .sum::<usize>()
        });
    }
}
