//! Criterion bench behind the Section 4.2 reduction: deciding triangle
//! existence by SemRE matching (nested queries) versus the direct cubic
//! scan.  The gap illustrates why the `O(|r||w|³)` term for nested SemREs
//! is hard to avoid (Theorem 4.5).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semre_workloads::triangle::{has_triangle_via_semre, Graph};

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    for n in [8usize, 12, 16, 24] {
        let graph = Graph::random(n, 0.15, 0xfeed ^ n as u64);
        group.bench_with_input(BenchmarkId::new("via_semre", n), &graph, |b, g| {
            b.iter(|| has_triangle_via_semre(g))
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &graph, |b, g| {
            b.iter(|| g.has_triangle_direct())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);
