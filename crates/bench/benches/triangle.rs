//! Micro-bench behind the Section 4.2 reduction: deciding triangle
//! existence by SemRE matching (nested queries) versus the direct cubic
//! scan.  The gap illustrates why the `O(|r||w|³)` term for nested SemREs
//! is hard to avoid (Theorem 4.5).

use semre_bench::micro;
use semre_workloads::triangle::{has_triangle_via_semre, Graph};

fn main() {
    for n in [8usize, 12, 16, 24] {
        let graph = Graph::random(n, 0.15, 0xfeed ^ n as u64);
        micro::bench("triangle", &format!("via_semre/{n}"), || {
            has_triangle_via_semre(&graph)
        });
        micro::bench("triangle", &format!("direct/{n}"), || {
            graph.has_triangle_direct()
        });
    }
}
