//! Criterion bench behind the Theorem 4.1 experiment: matching the
//! adversarial family `Σ*⟨q⟩Σ*` against `0^m 1^m` with an all-rejecting
//! oracle.  Time (and oracle calls, measured separately in the
//! `experiments` binary) must grow quadratically in `|w|` for any correct
//! matcher.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use semre_core::{DpMatcher, Matcher};
use semre_oracle::ConstOracle;
use semre_workloads::query_complexity::{lower_bound_input, lower_bound_semre};

fn bench_query_complexity(c: &mut Criterion) {
    let semre = lower_bound_semre(1);
    let oracle = ConstOracle::always_false();
    let snfa = Matcher::new(semre.clone(), oracle);
    let dp = DpMatcher::new(semre, oracle);

    let mut group = c.benchmark_group("query_complexity");
    group.sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    for m in [8usize, 16, 32, 64] {
        let input = lower_bound_input(m);
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_with_input(BenchmarkId::new("snfa", 2 * m), &input, |b, input| {
            b.iter(|| snfa.is_match(input))
        });
        group.bench_with_input(BenchmarkId::new("dp", 2 * m), &input, |b, input| {
            b.iter(|| dp.is_match(input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_complexity);
criterion_main!(benches);
