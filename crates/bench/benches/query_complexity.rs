//! Micro-bench behind the Theorem 4.1 experiment: matching the adversarial
//! family `Σ*⟨q⟩Σ*` against `0^m 1^m` with an all-rejecting oracle.  Time
//! (and oracle calls, measured separately in the `experiments` binary) must
//! grow quadratically in `|w|` for any correct matcher.

use semre_bench::micro;
use semre_core::{DpMatcher, Matcher};
use semre_oracle::ConstOracle;
use semre_workloads::query_complexity::{lower_bound_input, lower_bound_semre};

fn main() {
    let semre = lower_bound_semre(1);
    let oracle = ConstOracle::always_false();
    let snfa = Matcher::new(semre.clone(), oracle);
    let dp = DpMatcher::new(semre, oracle);

    for m in [8usize, 16, 32, 64] {
        let input = lower_bound_input(m);
        micro::bench("query_complexity", &format!("snfa/{}", 2 * m), || {
            snfa.is_match(&input)
        });
        micro::bench("query_complexity", &format!("dp/{}", 2 * m), || {
            dp.is_match(&input)
        });
    }
}
