//! Micro-bench behind Fig. 10: how per-line matching time grows with line
//! length, for the SNFA matcher and the DP baseline.
//!
//! The paper's figure uses corpus lines bucketed by length; here we
//! synthesize lines of exact lengths 25, 50, 100 and 200 for a
//! representative subset of the benchmark SemREs (one per oracle family) so
//! the scaling trend is directly visible in the report.

use semre_bench::{micro, ExperimentConfig};
use semre_core::{DpMatcher, Matcher};

/// Builds a line of exactly `len` bytes that exercises the given benchmark
/// (contains a planted positive near the front, padded with filler text).
fn line_of_length(bench: &str, len: usize) -> String {
    let planted = match bench {
        "spam,1" => "Subject: cheap viagra now ",
        "ip" => "Received: from relay (93.184.216.34) by mx ",
        "edom" => "From: alice1@vanished.net ",
        "pass" => r#"String k = "Ab1!Cd2#Ef3%Gh4&"; "#,
        _ => "plain filler line ",
    };
    let mut line = planted.to_owned();
    while line.len() < len {
        line.push_str("lorem ipsum dolor sit amet ");
    }
    line.truncate(len);
    line
}

fn main() {
    let config = ExperimentConfig {
        spam_lines: 50,
        java_lines: 50,
        ..ExperimentConfig::default()
    };
    let workbench = config.workbench();

    for bench_name in ["spam,1", "ip", "edom", "pass"] {
        let spec = workbench.benchmark(bench_name).expect("known benchmark");
        let snfa = Matcher::new(spec.semre.clone(), spec.oracle.clone());
        let dp = DpMatcher::new(spec.semre.clone(), spec.oracle.clone());
        for len in [25usize, 50, 100, 200] {
            let line = line_of_length(bench_name, len);
            micro::bench("fig10_scaling", &format!("snfa/{bench_name}/{len}"), || {
                snfa.is_match(line.as_bytes())
            });
            micro::bench("fig10_scaling", &format!("dp/{bench_name}/{len}"), || {
                dp.is_match(line.as_bytes())
            });
        }
    }
}
