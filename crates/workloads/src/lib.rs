//! Benchmark workloads for SemRE membership testing.
//!
//! Everything the experimental evaluation of the paper needs, generated
//! synthetically and deterministically:
//!
//! * [`corpus`] — the spam-e-mail and Java-code corpora (Section 5's two
//!   datasets), with planted positives and ground truth;
//! * [`tree`] — generated multi-file corpus trees (nested directories,
//!   shared-line pools for cross-file oracle deduplication, non-UTF-8 and
//!   chunk-straddling lines) for directory-scale scans;
//! * [`bench_set`] — the nine benchmark SemREs of Table 1 wired to their
//!   oracles ([`Workbench`] / [`BenchSpec`]);
//! * [`delay`] — a deterministic latency-injecting oracle wrapper
//!   ([`DelayOracle`]) for measuring overlapped oracle resolution;
//! * [`flaky`] — deterministic fault injectors ([`FlakyOracle`],
//!   [`PanickingOracle`]) driving the fault-tolerance test suite;
//! * [`triangle`] — the triangle-finding reduction of Section 4.2;
//! * [`query_complexity`] — the Ω(|w|²) oracle-query lower-bound experiment
//!   of Theorem 4.1.
//!
//! # Example
//!
//! ```
//! use semre_core::Matcher;
//! use semre_workloads::Workbench;
//!
//! let wb = Workbench::generate(42, 200, 200);
//! let spec = wb.benchmark("spam,1").expect("spam,1 is a Table 1 row");
//! let matcher = Matcher::new(spec.semre.clone(), spec.oracle.clone());
//! let matched = wb
//!     .corpus(spec.dataset)
//!     .lines()
//!     .iter()
//!     .filter(|line| matcher.is_match(line.as_bytes()))
//!     .count();
//! assert!(matched > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_set;
pub mod corpus;
pub mod delay;
pub mod flaky;
pub mod query_complexity;
pub mod rng;
pub mod tree;
pub mod triangle;

pub use bench_set::{BenchSpec, Workbench};
pub use corpus::{java_corpus, spam_corpus, Corpus, Dataset, GroundTruth};
pub use delay::DelayOracle;
pub use flaky::{FlakyOracle, FlakySchedule, PanickingOracle};
pub use tree::{CorpusTree, CorpusTreeConfig, TreeFile};
pub use triangle::{Graph, TriangleInstance};
