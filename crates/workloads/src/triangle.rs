//! The triangle-finding reduction of Section 4.2.
//!
//! Theorem 4.5 shows that SemRE membership testing is at least as hard as
//! detecting triangles in a graph: given an undirected graph `G`, matching
//! the string `w_G = #11#22#33…#nn` against the nested SemRE
//!
//! ```text
//! r_Δ = Σ* # (Σ · (ΣΣ*#Σ) ∧ ⟨E⟩ · (ΣΣ*#Σ) ∧ ⟨E⟩ · Σ) ∧ ⟨E⟩ Σ*     (Eq. 18)
//! ```
//!
//! succeeds exactly when `G` contains a triangle, where the oracle `⟨E⟩`
//! accepts a string iff its first and last symbols are adjacent vertices.
//! This module builds the reduction (graphs, encodings, the edge oracle,
//! and the SemRE) and a direct cubic triangle detector for
//! cross-validation.

use std::collections::HashSet;

use semre_oracle::Oracle;
use semre_syntax::{CharClass, Semre};

/// Name of the adjacency query used by the reduction.
pub const EDGE_QUERY: &str = "E";

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    vertices: usize,
    edges: HashSet<(usize, usize)>,
}

impl Graph {
    /// Creates a graph with `vertices` vertices and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` exceeds 200: the reduction encodes each vertex
    /// as one distinct byte of the input alphabet.
    pub fn new(vertices: usize) -> Self {
        assert!(
            vertices <= 200,
            "the byte-level encoding supports at most 200 vertices"
        );
        Graph {
            vertices,
            edges: HashSet::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self loops are not allowed) or if either endpoint
    /// is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self loops are not allowed");
        assert!(
            u < self.vertices && v < self.vertices,
            "edge endpoint out of range"
        );
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Generates an Erdős–Rényi random graph `G(n, p)`.
    pub fn random(vertices: usize, edge_probability: f64, seed: u64) -> Self {
        let mut g = Graph::new(vertices);
        let mut rng = crate::rng::StdRng::seed_from_u64(seed);
        for u in 0..vertices {
            for v in u + 1..vertices {
                if rng.gen_bool(edge_probability) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The complete tripartite "triangle-free unless…" test graph: a cycle
    /// of length `n` (triangle-free for `n ≥ 4`).
    pub fn cycle(vertices: usize) -> Self {
        let mut g = Graph::new(vertices);
        for u in 0..vertices {
            g.add_edge(u, (u + 1) % vertices);
        }
        g
    }

    /// Direct `O(n³)` triangle detection used as ground truth.
    pub fn has_triangle_direct(&self) -> bool {
        for &(u, v) in &self.edges {
            for w in 0..self.vertices {
                if w != u && w != v && self.has_edge(u, w) && self.has_edge(v, w) {
                    return true;
                }
            }
        }
        false
    }
}

/// The byte encoding a vertex in `w_G` (vertex `v` ↦ byte `0x30 + v`, so
/// that small graphs produce printable strings).
pub fn vertex_byte(v: usize) -> u8 {
    (0x30 + v) as u8
}

/// The delimiter byte `#`.
pub const DELIMITER: u8 = b'#';

/// The encoded string `w_G = #11#22#33…#nn` of Lemma 4.4.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 * g.vertices());
    for v in 0..g.vertices() {
        out.push(DELIMITER);
        out.push(vertex_byte(v));
        out.push(vertex_byte(v));
    }
    out
}

/// The SemRE `r_Δ` of Eq. 18, over the alphabet of `n` vertex bytes plus the
/// delimiter.
pub fn triangle_semre(vertices: usize) -> Semre {
    let mut alphabet = CharClass::empty();
    alphabet.insert(DELIMITER);
    for v in 0..vertices {
        alphabet.insert(vertex_byte(v));
    }
    let sigma = Semre::class(alphabet);
    let sigma_star = Semre::star(sigma.clone());
    let hash = Semre::byte(DELIMITER);
    // (Σ Σ* # Σ) ∧ ⟨E⟩ — one "hop" from the second copy of a vertex to the
    // first copy of a later vertex.
    let hop = || {
        Semre::query(
            Semre::concat_all([
                sigma.clone(),
                sigma_star.clone(),
                hash.clone(),
                sigma.clone(),
            ]),
            EDGE_QUERY,
        )
    };
    let triangle = Semre::query(
        Semre::concat_all([sigma.clone(), hop(), hop(), sigma.clone()]),
        EDGE_QUERY,
    );
    Semre::concat_all([sigma_star.clone(), hash, triangle, sigma_star])
}

/// The adjacency oracle `⟨E⟩`: accepts a non-empty string iff its first and
/// last bytes decode to adjacent vertices of the graph.
#[derive(Clone, Debug)]
pub struct EdgeOracle {
    graph: Graph,
}

impl EdgeOracle {
    /// Creates the oracle for `graph`.
    pub fn new(graph: Graph) -> Self {
        EdgeOracle { graph }
    }

    fn decode(&self, byte: u8) -> Option<usize> {
        let v = byte.checked_sub(0x30)? as usize;
        (v < self.graph.vertices()).then_some(v)
    }
}

impl Oracle for EdgeOracle {
    fn holds(&self, query: &str, text: &[u8]) -> bool {
        if query != EDGE_QUERY || text.is_empty() {
            return false;
        }
        match (
            self.decode(text[0]),
            self.decode(*text.last().expect("non-empty")),
        ) {
            (Some(u), Some(v)) => self.graph.has_edge(u, v),
            _ => false,
        }
    }

    fn describe(&self) -> String {
        format!(
            "edge-oracle({} vertices, {} edges)",
            self.graph.vertices(),
            self.graph.num_edges()
        )
    }
}

/// A packaged instance of the reduction: the SemRE, the encoded string, and
/// the oracle for one graph.
#[derive(Clone, Debug)]
pub struct TriangleInstance {
    /// The nested SemRE `r_Δ`.
    pub semre: Semre,
    /// The encoded input string `w_G`.
    pub input: Vec<u8>,
    /// The adjacency oracle.
    pub oracle: EdgeOracle,
}

impl TriangleInstance {
    /// Builds the reduction instance for `graph`.
    pub fn new(graph: Graph) -> Self {
        TriangleInstance {
            semre: triangle_semre(graph.vertices()),
            input: encode_graph(&graph),
            oracle: EdgeOracle::new(graph),
        }
    }
}

/// Decides triangle existence by running the SemRE matcher on the reduction
/// instance (Theorem 4.5).
pub fn has_triangle_via_semre(graph: &Graph) -> bool {
    let instance = TriangleInstance::new(graph.clone());
    let matcher = semre_core::Matcher::new(instance.semre, instance.oracle);
    matcher.is_match(&instance.input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_basics() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_triangle_direct());
        g.add_edge(0, 2);
        assert!(g.has_triangle_direct());
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        Graph::new(3).add_edge(1, 1);
    }

    #[test]
    fn cycles_are_triangle_free() {
        assert!(Graph::cycle(3).has_triangle_direct());
        for n in 4..10 {
            assert!(
                !Graph::cycle(n).has_triangle_direct(),
                "C_{n} has no triangle"
            );
        }
    }

    #[test]
    fn encoding_shape() {
        let g = Graph::new(3);
        assert_eq!(encode_graph(&g), b"#00#11#22".to_vec());
        assert_eq!(vertex_byte(0), b'0');
        let r = triangle_semre(3);
        assert!(r.has_nested_queries());
        assert_eq!(r.queries().len(), 1);
        assert_eq!(r.queries()[0].as_str(), EDGE_QUERY);
    }

    #[test]
    fn edge_oracle_semantics() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2);
        let oracle = EdgeOracle::new(g);
        assert!(oracle.holds(EDGE_QUERY, b"0#2"));
        assert!(oracle.holds(EDGE_QUERY, b"2xxxx0"));
        assert!(!oracle.holds(EDGE_QUERY, b"0#1"));
        assert!(!oracle.holds(EDGE_QUERY, b""));
        assert!(!oracle.holds(EDGE_QUERY, b"0#9"));
        assert!(!oracle.holds("other", b"0#2"));
    }

    #[test]
    fn reduction_agrees_with_direct_detection_on_small_graphs() {
        // A triangle, a path, a star, a 4-cycle, and the triangle plus a
        // pendant vertex.
        let mut triangle = Graph::new(3);
        triangle.add_edge(0, 1);
        triangle.add_edge(1, 2);
        triangle.add_edge(0, 2);
        let mut path = Graph::new(4);
        path.add_edge(0, 1);
        path.add_edge(1, 2);
        path.add_edge(2, 3);
        let mut star = Graph::new(5);
        for v in 1..5 {
            star.add_edge(0, v);
        }
        let mut pendant = triangle.clone();
        // Recreate with an extra vertex.
        let mut pendant4 = Graph::new(4);
        for &(u, v) in pendant.edges.iter() {
            pendant4.add_edge(u, v);
        }
        pendant4.add_edge(2, 3);
        pendant = pendant4;

        for (name, g) in [
            ("triangle", &triangle),
            ("path", &path),
            ("star", &star),
            ("C4", &Graph::cycle(4)),
            ("pendant", &pendant),
        ] {
            assert_eq!(
                has_triangle_via_semre(g),
                g.has_triangle_direct(),
                "disagreement on {name}"
            );
        }
    }

    #[test]
    fn reduction_agrees_on_random_graphs() {
        for n in [4, 6, 8] {
            for (i, p) in [0.1, 0.3, 0.5].into_iter().enumerate() {
                let g = Graph::random(n, p, 1000 + n as u64 + i as u64);
                assert_eq!(
                    has_triangle_via_semre(&g),
                    g.has_triangle_direct(),
                    "disagreement on G({n}, {p})"
                );
            }
        }
    }

    #[test]
    fn random_graph_density_follows_probability() {
        let sparse = Graph::random(30, 0.05, 7);
        let dense = Graph::random(30, 0.8, 7);
        assert!(sparse.num_edges() < dense.num_edges());
        assert!(dense.has_triangle_direct());
    }
}
