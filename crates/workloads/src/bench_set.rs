//! The nine benchmark SemREs of Table 1, wired to their oracles and
//! corpora.
//!
//! A [`Workbench`] generates both synthetic corpora, derives the oracle
//! databases from the corpus ground truth (Whois snapshot, phishing list,
//! IP geolocation ranges, simulated file system, simulated LLM), and
//! produces one [`BenchSpec`] per row of Table 1.  Every spec carries the
//! padded SemRE actually matched against whole lines, the backing oracle,
//! and the latency model used to emulate that oracle's cost profile.

use std::sync::Arc;

use semre_oracle::{
    FileSystemOracle, IpGeoDb, LatencyModel, Oracle, PhishingList, SimLlmOracle, TableOracle,
    WhoisDb,
};
use semre_syntax::{examples, Semre};

use crate::corpus::{java_corpus, spam_corpus, Corpus, Dataset, GroundTruth};

/// One row of Table 1: a named, padded benchmark SemRE with its oracle.
#[derive(Clone)]
pub struct BenchSpec {
    /// Short name used in the paper's tables (`pass`, `file`, `id`, …).
    pub name: &'static str,
    /// Which corpus the SemRE is evaluated on.
    pub dataset: Dataset,
    /// The padded SemRE matched against whole lines.
    pub semre: Semre,
    /// Human-readable description of the backing oracle (Table 1's
    /// "Oracles" column).
    pub oracle_kind: &'static str,
    /// The backing oracle.
    pub oracle: Arc<dyn Oracle>,
    /// Latency model emulating the oracle's cost.
    pub latency: LatencyModel,
}

impl std::fmt::Debug for BenchSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchSpec")
            .field("name", &self.name)
            .field("dataset", &self.dataset)
            .field("oracle_kind", &self.oracle_kind)
            .field("semre_size", &self.semre.size())
            .finish()
    }
}

/// Both corpora plus every oracle backend, generated from a single seed.
pub struct Workbench {
    spam: Corpus,
    java: Corpus,
    llm: Arc<SimLlmOracle>,
    whois: Arc<WhoisDb>,
    phishing: Arc<PhishingList>,
    ipgeo: Arc<IpGeoDb>,
    filesystem: Arc<FileSystemOracle>,
}

impl Workbench {
    /// Generates corpora of the given sizes and populates every oracle from
    /// the corpus ground truth.
    pub fn generate(seed: u64, spam_lines: usize, java_lines: usize) -> Self {
        let (spam, spam_truth) = spam_corpus(seed, spam_lines);
        let (java, java_truth) = java_corpus(seed.wrapping_add(1), java_lines);
        Workbench::from_parts(spam, java, &spam_truth, &java_truth)
    }

    fn from_parts(
        spam: Corpus,
        java: Corpus,
        spam_truth: &GroundTruth,
        java_truth: &GroundTruth,
    ) -> Self {
        let mut whois = WhoisDb::new();
        for (domain, year) in &spam_truth.live_domains {
            whois.register(domain, *year);
        }
        let mut phishing = PhishingList::new();
        phishing.extend(spam_truth.phishing_domains.iter());
        let filesystem = FileSystemOracle::with_files(java_truth.existing_paths.iter());
        let ipgeo = IpGeoDb::with_private_ranges();
        let llm = SimLlmOracle::new();
        Workbench {
            spam,
            java,
            llm: Arc::new(llm),
            whois: Arc::new(whois),
            phishing: Arc::new(phishing),
            ipgeo: Arc::new(ipgeo),
            filesystem: Arc::new(filesystem),
        }
    }

    /// The spam-e-mail corpus.
    pub fn spam(&self) -> &Corpus {
        &self.spam
    }

    /// The Java-code corpus.
    pub fn java(&self) -> &Corpus {
        &self.java
    }

    /// The corpus for a given dataset.
    pub fn corpus(&self, dataset: Dataset) -> &Corpus {
        match dataset {
            Dataset::Spam => &self.spam,
            Dataset::Java => &self.java,
        }
    }

    /// The simulated-LLM oracle (shared by `pass`, `id`, `spam,1`,
    /// `spam,2`).
    pub fn llm(&self) -> Arc<SimLlmOracle> {
        Arc::clone(&self.llm)
    }

    /// The Whois snapshot (shared by `edom` and `wdom,2`).
    pub fn whois(&self) -> Arc<WhoisDb> {
        Arc::clone(&self.whois)
    }

    /// The nine benchmark specifications of Table 1, in table order.
    pub fn benchmarks(&self) -> Vec<BenchSpec> {
        let llm: Arc<dyn Oracle> = self.llm.clone();
        let whois: Arc<dyn Oracle> = self.whois.clone();
        let phishing: Arc<dyn Oracle> = self.phishing.clone();
        let ipgeo: Arc<dyn Oracle> = self.ipgeo.clone();
        let filesystem: Arc<dyn Oracle> = self.filesystem.clone();
        vec![
            BenchSpec {
                name: "pass",
                dataset: Dataset::Java,
                semre: Semre::padded(examples::r_pass()),
                oracle_kind: "LLM",
                oracle: llm.clone(),
                latency: LatencyModel::llm(),
            },
            BenchSpec {
                name: "file",
                dataset: Dataset::Java,
                semre: Semre::padded(examples::r_file()),
                oracle_kind: "File system",
                oracle: filesystem,
                latency: LatencyModel::local(),
            },
            BenchSpec {
                name: "id",
                dataset: Dataset::Java,
                semre: examples::r_id_padded(),
                oracle_kind: "LLM",
                oracle: llm.clone(),
                latency: LatencyModel::llm(),
            },
            BenchSpec {
                name: "edom",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_edom()),
                oracle_kind: "Whois",
                oracle: whois.clone(),
                latency: LatencyModel::service(),
            },
            BenchSpec {
                name: "spam,1",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_spam1()),
                oracle_kind: "LLM",
                oracle: llm.clone(),
                latency: LatencyModel::llm(),
            },
            BenchSpec {
                name: "spam,2",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_spam2()),
                oracle_kind: "LLM",
                oracle: llm,
                latency: LatencyModel::llm(),
            },
            BenchSpec {
                name: "wdom,1",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_wdom1()),
                oracle_kind: "Phishing website list",
                oracle: phishing,
                latency: LatencyModel::service(),
            },
            BenchSpec {
                name: "wdom,2",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_wdom2()),
                oracle_kind: "Whois",
                oracle: whois,
                latency: LatencyModel::service(),
            },
            BenchSpec {
                name: "ip",
                dataset: Dataset::Spam,
                semre: Semre::padded(examples::r_ip()),
                oracle_kind: "IP geolocation",
                oracle: ipgeo,
                latency: LatencyModel::service(),
            },
        ]
    }

    /// Looks up a single benchmark by its Table 1 name.
    pub fn benchmark(&self, name: &str) -> Option<BenchSpec> {
        self.benchmarks().into_iter().find(|b| b.name == name)
    }

    /// A combined oracle that dispatches every benchmark query to its
    /// backend, useful for matching multiple SemREs over one shared oracle.
    pub fn combined_oracle(&self) -> TableOracle {
        TableOracle::new()
            .with(examples::queries::PASSWORD, self.llm())
            .with(examples::queries::BAD_IDENTIFIER, self.llm())
            .with(examples::queries::MEDICINE, self.llm())
            .with(
                examples::queries::NONEXISTENT_PATH,
                Arc::clone(&self.filesystem),
            )
            .with(examples::queries::DEAD_DOMAIN, Arc::clone(&self.whois))
            .with(examples::queries::RECENT_DOMAIN, Arc::clone(&self.whois))
            .with(examples::queries::PHISHING, Arc::clone(&self.phishing))
            .with(examples::queries::FOREIGN_IP, Arc::clone(&self.ipgeo))
    }
}

impl std::fmt::Debug for Workbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workbench")
            .field("spam_lines", &self.spam.len())
            .field("java_lines", &self.java.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_core::Matcher;

    #[test]
    fn workbench_produces_nine_benchmarks() {
        let wb = Workbench::generate(11, 100, 100);
        let benches = wb.benchmarks();
        assert_eq!(benches.len(), 9);
        let names: Vec<_> = benches.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["pass", "file", "id", "edom", "spam,1", "spam,2", "wdom,1", "wdom,2", "ip"]
        );
        for b in &benches {
            assert!(b.semre.size() > 5, "{} is suspiciously small", b.name);
            assert!(
                !b.semre.has_nested_queries(),
                "{} should be non-nested",
                b.name
            );
        }
        assert!(wb.benchmark("ip").is_some());
        assert!(wb.benchmark("nope").is_none());
        assert!(format!("{wb:?}").contains("spam_lines"));
        assert!(format!("{:?}", benches[0]).contains("pass"));
    }

    #[test]
    fn every_benchmark_matches_at_least_one_line_of_its_corpus() {
        // With a reasonably sized corpus, every benchmark should find some
        // planted positives and also reject some lines.
        let wb = Workbench::generate(17, 2500, 2500);
        for spec in wb.benchmarks() {
            let matcher = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
            let corpus = wb.corpus(spec.dataset);
            let matched = corpus
                .lines()
                .iter()
                .filter(|line| matcher.is_match(line.as_bytes()))
                .count();
            assert!(matched > 0, "{}: no line of the corpus matched", spec.name);
            assert!(
                matched < corpus.len(),
                "{}: every line matched, which defeats the benchmark",
                spec.name
            );
        }
    }

    #[test]
    fn planted_examples_match_expected_benchmarks() {
        let wb = Workbench::generate(23, 200, 200);
        let matcher_for = |name: &str| {
            let spec = wb.benchmark(name).unwrap();
            Matcher::new(spec.semre, spec.oracle)
        };
        // edom: dead sender domain.  (Note that lines with live sender
        // domains can still match through truncated-TLD substrings such as
        // "example.co" — an inherent looseness of the padded SemRE the
        // paper also observes — so the negative example has no domain at
        // all.)
        assert!(matcher_for("edom").is_match(b"From: alice42@vanished.net"));
        assert!(!matcher_for("edom").is_match(b"From: mailer daemon"));
        // wdom,1: phishing URL.
        assert!(matcher_for("wdom,1").is_match(b"click https://login-secure.xyz today"));
        assert!(!matcher_for("wdom,1").is_match(b"click https://example.com today"));
        // wdom,2: recently registered domain.
        assert!(matcher_for("wdom,2").is_match(b"see http://www.newstartup.io for info"));
        assert!(!matcher_for("wdom,2").is_match(b"see http://www.example.com for info"));
        // ip: foreign addresses only.
        assert!(matcher_for("ip").is_match(b"Received: from relay (93.184.216.34) by mx"));
        assert!(!matcher_for("ip").is_match(b"Received: from relay (10.0.0.7) by mx"));
        // file: stale path.  (Lines mentioning live paths can still match
        // through proper substrings of the path, so the negative example
        // contains no path separator at all.)
        assert!(matcher_for("file")
            .is_match(br#"File input = new File("/tmp/build-1999/output.jar");"#));
        assert!(!matcher_for("file").is_match(b"File input = openDefault();"));
        // pass: hard-coded secret.
        assert!(matcher_for("pass").is_match(br#"String k = "Ab1!Cd2#Ef3%Gh4&";"#));
        assert!(!matcher_for("pass").is_match(br#"String k = "plain text";"#));
        // id: sloppy identifier.
        assert!(matcher_for("id").is_match(b"int foo = compute();"));
        assert!(!matcher_for("id").is_match(b"int counter = compute();"));
        // spam,1 / spam,2: medicine names.
        assert!(matcher_for("spam,1").is_match(b"Subject: cheap tramadol offer"));
        assert!(matcher_for("spam,2").is_match(b"Subject: cheap tramadol offer"));
        assert!(!matcher_for("spam,1").is_match(b"Subject: quarterly report"));
    }

    #[test]
    fn combined_oracle_answers_all_query_families() {
        let wb = Workbench::generate(29, 100, 100);
        let oracle = wb.combined_oracle();
        use semre_oracle::Oracle as _;
        assert!(oracle.holds(examples::queries::MEDICINE, b"viagra"));
        assert!(oracle.holds(examples::queries::DEAD_DOMAIN, b"vanished.net"));
        assert!(!oracle.holds(examples::queries::DEAD_DOMAIN, b"example.com"));
        assert!(oracle.holds(examples::queries::PHISHING, b"login-secure.xyz"));
        assert!(oracle.holds(examples::queries::FOREIGN_IP, b"93.184.216.34"));
        assert!(oracle.holds(examples::queries::NONEXISTENT_PATH, b"/no/such/file"));
        assert!(!oracle.holds("unknown query", b"whatever"));
    }
}
