//! Generated multi-file corpus trees.
//!
//! The single-file corpora of [`crate::corpus`] exercise the matcher;
//! directory-scale features — recursive walking, file-level work
//! stealing, cross-file oracle deduplication — need a *tree*.
//! [`CorpusTree`] generates one deterministically (SplitMix64-seeded,
//! like everything else in this crate) with the shapes that break naive
//! multi-file engines:
//!
//! * nested directories of uneven depth and fan-out;
//! * empty files and single-line files next to multi-kilobyte ones;
//! * occasional non-UTF-8 lines (matching is byte-level; printing must
//!   not shift offsets through a lossy decode);
//! * long lines that straddle streaming chunk boundaries;
//! * a **shared line pool**: most lines are drawn from a fixed pool, so
//!   the same `(query, text)` oracle questions recur across many files —
//!   the workload on which a cross-file shared session visibly beats
//!   per-file sessions.
//!
//! The tree is a pure in-memory plan ([`CorpusTree::files`]) until
//! [`CorpusTree::write_to`] materializes it; tests and benchmarks write
//! it under a scratch directory and point `grepo`-level scans at it.

use std::io;
use std::path::{Path, PathBuf};

use crate::rng::StdRng;
use semre_oracle::MEDICINE_NAMES;

/// Knobs for tree generation.
#[derive(Clone, Copy, Debug)]
pub struct CorpusTreeConfig {
    /// Generation seed.
    pub seed: u64,
    /// Number of files (directories are derived from it).
    pub files: usize,
    /// Mean lines per non-empty file.
    pub mean_lines: usize,
    /// Size of the shared line pool duplicates are drawn from.
    pub pool: usize,
    /// Probability that a line is drawn from the shared pool rather than
    /// generated fresh.
    pub pool_bias: f64,
}

impl Default for CorpusTreeConfig {
    fn default() -> Self {
        CorpusTreeConfig {
            seed: 20250726,
            files: 24,
            mean_lines: 60,
            pool: 40,
            pool_bias: 0.7,
        }
    }
}

/// One generated file of the tree: its root-relative path and raw bytes.
#[derive(Clone, Debug)]
pub struct TreeFile {
    /// Path relative to the tree root (always `/`-separated).
    pub path: PathBuf,
    /// File contents; lines may be non-UTF-8 and the last line may lack a
    /// terminator.
    pub contents: Vec<u8>,
}

/// A deterministic multi-file corpus: a list of relative paths with
/// contents, plus bookkeeping about what was planted.
#[derive(Clone, Debug)]
pub struct CorpusTree {
    /// The files, in deterministic (sorted-path) order.
    pub files: Vec<TreeFile>,
    /// Lines across all files.
    pub total_lines: usize,
    /// Lines that carry a planted medicine-name positive.
    pub planted_positives: usize,
}

/// The spam-shaped line pool and fresh-line generator shared by the tree.
fn spam_line(rng: &mut StdRng, allow_non_utf8: bool) -> Vec<u8> {
    let med = MEDICINE_NAMES[rng.gen_range(0..MEDICINE_NAMES.len())];
    match rng.gen_range(0..10u32) {
        // Positives: subject lines advertising a medicine.
        0..=2 => format!("Subject: cheap {med} shipped overnight").into_bytes(),
        3 => format!("Subject: {med} without prescription").into_bytes(),
        // Plain negatives.
        4 => b"Subject: minutes of the weekly sync".to_vec(),
        5 => format!("order #{} confirmed", rng.gen_range(1000..9999u32)).into_bytes(),
        6 => b"lorem ipsum dolor sit amet".to_vec(),
        // A long line, comfortably past small streaming chunks.
        7 => {
            let mut line = Vec::with_capacity(300);
            line.extend_from_slice(b"log: ");
            for _ in 0..rng.gen_range(40..70usize) {
                line.extend_from_slice(b"xyzzy ");
            }
            line
        }
        // Occasionally non-UTF-8 bytes before real content.
        8 if allow_non_utf8 => {
            let mut line = vec![0xff, 0xfe, b' '];
            line.extend_from_slice(format!("buy {med} now").as_bytes());
            line
        }
        _ => format!("re: {med} question").into_bytes(),
    }
}

/// A lowercase word unique to `n`: `u` followed by base-26 digits.
/// Distinct line numbers yield distinct tokens, which is what makes the
/// skewed tree's oracle questions per-line unique.
fn lower_token(mut n: usize) -> String {
    let mut token = String::from("u");
    loop {
        token.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    token
}

impl CorpusTree {
    /// Generates the tree for `config`.  The same config always yields
    /// the same tree, byte for byte.
    pub fn generate(config: &CorpusTreeConfig) -> CorpusTree {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pool: Vec<Vec<u8>> = (0..config.pool.max(1))
            .map(|_| spam_line(&mut rng, true))
            .collect();

        let dirs = ["", "mail", "mail/inbox", "archive", "archive/2024/deep"];
        let mut files = Vec::new();
        let mut total_lines = 0;
        let mut planted_positives = 0;
        for index in 0..config.files.max(1) {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            let name = format!("file-{index:03}.txt");
            let path = if dir.is_empty() {
                PathBuf::from(name)
            } else {
                Path::new(dir).join(name)
            };
            // A few empty and tiny files; otherwise mean_lines ± 50 %.
            let lines = match rng.gen_range(0..8u32) {
                0 => 0,
                1 => 1,
                _ => {
                    let mean = config.mean_lines.max(2);
                    rng.gen_range(mean / 2..mean + mean / 2)
                }
            };
            let mut contents = Vec::new();
            for line_index in 0..lines {
                let line = if rng.gen_bool(config.pool_bias) {
                    pool[rng.gen_range(0..pool.len())].clone()
                } else {
                    spam_line(&mut rng, true)
                };
                if line.starts_with(b"Subject: cheap") || line.starts_with(b"Subject: ") {
                    planted_positives += usize::from(
                        MEDICINE_NAMES
                            .iter()
                            .any(|m| line.windows(m.len()).any(|w| w == m.as_bytes())),
                    );
                }
                contents.extend_from_slice(&line);
                // A few files end without a trailing newline.
                if line_index + 1 < lines || !rng.gen_bool(0.15) {
                    contents.push(b'\n');
                }
                total_lines += 1;
            }
            files.push(TreeFile { path, contents });
        }
        // Deterministic path order, matching what a sorted walk yields.
        files.sort_by(|a, b| a.path.cmp(&b.path));
        CorpusTree {
            files,
            total_lines,
            planted_positives,
        }
    }

    /// Generates a **skewed** tree: the regular tree for `config` plus
    /// one giant file (`giant.txt`, at the root) of `giant_lines` lines
    /// that dominates the byte count.  With the small default-ish
    /// configs used by tests and benchmarks, the giant file carries well
    /// over 90 % of the tree's bytes, so whole-file work stealing
    /// degenerates to one worker scanning the giant file while the rest
    /// idle — the workload sub-file range splitting exists for.
    ///
    /// Most giant-file lines are *unique*: each positive embeds a
    /// line-numbered lowercase token ahead of the medicine name, so the
    /// oracle faces fresh `(query, text)` questions on nearly every line
    /// and cross-file answer sharing cannot flatten the per-line cost
    /// the way it does on the pool-heavy regular tree.  Without that,
    /// a delayed oracle would pay its round-trip only a handful of times
    /// and the skew would cost nothing worth measuring.
    pub fn generate_skewed(config: &CorpusTreeConfig, giant_lines: usize) -> CorpusTree {
        let mut tree = CorpusTree::generate(config);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut contents = Vec::new();
        let mut planted = 0;
        for n in 0..giant_lines.max(1) {
            if rng.gen_bool(0.9) {
                let med = MEDICINE_NAMES[rng.gen_range(0..MEDICINE_NAMES.len())];
                planted += 1;
                contents.extend_from_slice(
                    format!("Subject: cheap {} {med} shipped overnight", lower_token(n)).as_bytes(),
                );
            } else {
                contents.extend_from_slice(
                    format!("order #{} confirmed", rng.gen_range(1000..9999u32)).as_bytes(),
                );
            }
            contents.push(b'\n');
        }
        tree.total_lines += giant_lines.max(1);
        tree.planted_positives += planted;
        tree.files.push(TreeFile {
            path: PathBuf::from("giant.txt"),
            contents,
        });
        tree.files.sort_by(|a, b| a.path.cmp(&b.path));
        tree
    }

    /// Materializes the tree under `root`, creating directories as
    /// needed.  Existing files are overwritten.
    ///
    /// # Errors
    ///
    /// Any I/O error creating directories or writing files.
    pub fn write_to(&self, root: &Path) -> io::Result<()> {
        for file in &self.files {
            let path = root.join(&file.path);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, &file.contents)?;
        }
        Ok(())
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|f| f.contents.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let config = CorpusTreeConfig::default();
        let a = CorpusTree::generate(&config);
        let b = CorpusTree::generate(&config);
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.path, fb.path);
            assert_eq!(fa.contents, fb.contents);
        }
        assert_eq!(a.files.len(), config.files);
        assert!(a.total_lines > 0);
        assert!(a.planted_positives > 0, "positives must be planted");
        // The interesting shapes are present.
        assert!(a.files.iter().any(|f| f.contents.is_empty()), "empty file");
        assert!(
            a.files.iter().any(|f| f.path.components().count() >= 3),
            "nested dirs"
        );
        assert!(
            a.files
                .iter()
                .any(|f| std::str::from_utf8(&f.contents).is_err()),
            "non-UTF-8 lines"
        );
        assert!(
            a.files
                .iter()
                .any(|f| f.contents.split(|&b| b == b'\n').any(|l| l.len() > 200)),
            "chunk-straddling long lines"
        );
        // Cross-file duplication: some line occurs in many files.
        let mut seen: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
        for file in &a.files {
            for line in file.contents.split(|&b| b == b'\n') {
                if !line.is_empty() {
                    *seen.entry(line).or_default() += 1;
                }
            }
        }
        assert!(
            seen.values().any(|&n| n >= 5),
            "shared pool must duplicate lines across files"
        );
        // A different seed yields a different tree.
        let other = CorpusTree::generate(&CorpusTreeConfig { seed: 1, ..config });
        assert!(a
            .files
            .iter()
            .zip(&other.files)
            .any(|(x, y)| x.contents != y.contents));
    }

    #[test]
    fn skewed_tree_is_dominated_by_one_file_of_unique_lines() {
        let config = CorpusTreeConfig {
            files: 8,
            mean_lines: 10,
            ..CorpusTreeConfig::default()
        };
        let tree = CorpusTree::generate_skewed(&config, 2_000);
        let again = CorpusTree::generate_skewed(&config, 2_000);
        assert_eq!(tree.files.len(), again.files.len());
        for (a, b) in tree.files.iter().zip(&again.files) {
            assert_eq!(a.contents, b.contents, "{:?}", a.path);
        }
        let giant = tree
            .files
            .iter()
            .find(|f| f.path == Path::new("giant.txt"))
            .expect("giant file present");
        assert!(
            giant.contents.len() * 10 >= tree.total_bytes() * 9,
            "giant file must carry >= 90 % of bytes ({} of {})",
            giant.contents.len(),
            tree.total_bytes()
        );
        // Nearly every giant line is unique — the oracle cannot be
        // flattened by cross-line answer sharing.
        let lines: Vec<&[u8]> = giant
            .contents
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        let distinct: std::collections::HashSet<&[u8]> = lines.iter().copied().collect();
        assert_eq!(lines.len(), 2_000);
        assert!(
            distinct.len() * 10 >= lines.len() * 8,
            "most giant lines must be distinct ({} of {})",
            distinct.len(),
            lines.len()
        );
        assert!(tree.planted_positives > 1_000);
    }

    #[test]
    fn write_to_materializes_the_plan() {
        let config = CorpusTreeConfig {
            files: 6,
            mean_lines: 8,
            ..CorpusTreeConfig::default()
        };
        let tree = CorpusTree::generate(&config);
        let root = std::env::temp_dir().join(format!("semre-tree-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        tree.write_to(&root).unwrap();
        for file in &tree.files {
            let on_disk = std::fs::read(root.join(&file.path)).unwrap();
            assert_eq!(on_disk, file.contents, "{:?}", file.path);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
