//! The query-complexity lower-bound experiment (Theorem 4.1).
//!
//! Theorem 4.1 shows that, in the black-box oracle setting, any correct
//! matcher must issue Ω(|w|²) oracle queries in the worst case (and
//! Ω(|r||w|²) when the query space is unbounded).  The adversarial family
//! is
//!
//! * `r_k = Σ* (⟨q₁⟩ + ⟨q₂⟩ + … + ⟨q_k⟩) Σ*`, and
//! * `w_m = 0^m 1^m`,
//!
//! together with the all-rejecting oracle: the matcher cannot conclude
//! "no match" without having probed every `(qᵢ, substring)` pair.  This
//! module builds the family and measures how many oracle calls the two
//! matchers actually issue, which the benchmark harness plots against the
//! quadratic lower bound.

use std::sync::Arc;

use semre_core::{DpMatcher, Matcher, MatcherConfig};
use semre_oracle::{ConstOracle, Instrumented, Oracle};
use semre_syntax::Semre;

/// The adversarial SemRE `Σ* (⟨q₁⟩ + … + ⟨q_k⟩) Σ*` with `k` distinct
/// queries.
///
/// # Panics
///
/// Panics if `queries` is zero.
pub fn lower_bound_semre(queries: usize) -> Semre {
    assert!(queries > 0, "at least one query is required");
    let union = Semre::union_all((1..=queries).map(|i| Semre::oracle(format!("q{i}"))));
    Semre::concat_all([Semre::any_star(), union, Semre::any_star()])
}

/// The adversarial input `0^m 1^m`.
pub fn lower_bound_input(m: usize) -> Vec<u8> {
    let mut w = vec![b'0'; m];
    w.extend(std::iter::repeat(b'1').take(m));
    w
}

/// The information-theoretic lower bound of Theorem 4.1 on the number of
/// oracle calls for `|w| = 2m` and one query: one probe per substring,
/// `(2m + 1)(2m + 2) / 2` including the empty ones.
pub fn theoretical_lower_bound(m: usize, queries: usize) -> u64 {
    let n = 2 * m as u64;
    queries as u64 * (n + 1) * (n + 2) / 2
}

/// Which matcher to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherKind {
    /// The query-graph (SNFA) algorithm of Section 3.
    QueryGraph,
    /// The dynamic-programming baseline of Section 2.1.
    Baseline,
}

/// One measured point of the query-complexity experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryComplexityPoint {
    /// Half-length `m` of the input `0^m 1^m`.
    pub m: usize,
    /// Input length `|w| = 2m`.
    pub input_len: usize,
    /// Oracle calls issued by the matcher (via its instrumentation).
    pub oracle_calls: u64,
    /// The Ω(|w|²) reference value.
    pub lower_bound: u64,
}

/// Measures the number of oracle calls issued when matching the adversarial
/// family with the all-rejecting oracle, for each `m` in `ms`.
///
/// The query-graph matcher is pinned to the *per-call* oracle plane:
/// Theorem 4.1 counts the questions the algorithm must ask, which is
/// exactly what that plane ships to the backend.  (The batched plane would
/// additionally collapse substrings of `0^m 1^m` with equal content —
/// a transport-level saving measured by the batch-efficiency experiment,
/// not part of the lower bound.)
pub fn measure(kind: MatcherKind, queries: usize, ms: &[usize]) -> Vec<QueryComplexityPoint> {
    let semre = lower_bound_semre(queries);
    ms.iter()
        .map(|&m| {
            let input = lower_bound_input(m);
            let oracle = Arc::new(Instrumented::new(ConstOracle::always_false()));
            let calls = match kind {
                MatcherKind::QueryGraph => {
                    let matcher = Matcher::with_config(
                        semre.clone(),
                        Arc::clone(&oracle) as Arc<dyn Oracle>,
                        MatcherConfig::per_call(),
                    );
                    let report = matcher.run(&input);
                    assert!(!report.matched, "the all-rejecting oracle admits no match");
                    oracle.stats().calls
                }
                MatcherKind::Baseline => {
                    let matcher =
                        DpMatcher::new(semre.clone(), Arc::clone(&oracle) as Arc<dyn Oracle>);
                    let report = matcher.run(&input);
                    assert!(!report.matched, "the all-rejecting oracle admits no match");
                    oracle.stats().calls
                }
            };
            QueryComplexityPoint {
                m,
                input_len: 2 * m,
                oracle_calls: calls,
                lower_bound: theoretical_lower_bound(m, queries),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_shapes() {
        let r = lower_bound_semre(3);
        assert_eq!(r.queries().len(), 3);
        assert!(!r.has_nested_queries());
        assert_eq!(lower_bound_input(3), b"000111".to_vec());
        assert_eq!(lower_bound_input(0), Vec::<u8>::new());
        assert_eq!(theoretical_lower_bound(2, 1), 15);
        assert_eq!(theoretical_lower_bound(2, 3), 45);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_rejected() {
        let _ = lower_bound_semre(0);
    }

    #[test]
    fn both_matchers_grow_quadratically() {
        for kind in [MatcherKind::QueryGraph, MatcherKind::Baseline] {
            let points = measure(kind, 1, &[2, 4, 8]);
            assert_eq!(points.len(), 3);
            // Doubling the input length should roughly quadruple the number
            // of oracle calls (between 3× and 5× allows for lower-order
            // terms).
            for pair in points.windows(2) {
                let ratio = pair[1].oracle_calls as f64 / pair[0].oracle_calls as f64;
                assert!(
                    (3.0..=5.0).contains(&ratio),
                    "{kind:?}: growth ratio {ratio} is not quadratic ({points:?})"
                );
            }
            // And the measured counts are at least on the order of the
            // non-empty-substring lower bound.
            for p in &points {
                let nonempty = (p.input_len * (p.input_len + 1) / 2) as u64;
                assert!(
                    p.oracle_calls >= nonempty,
                    "{kind:?}: {} calls for m = {} is below the lower bound {}",
                    p.oracle_calls,
                    p.m,
                    nonempty
                );
            }
        }
    }

    #[test]
    fn query_count_scales_linearly() {
        let one = measure(MatcherKind::QueryGraph, 1, &[6]);
        let three = measure(MatcherKind::QueryGraph, 3, &[6]);
        let ratio = three[0].oracle_calls as f64 / one[0].oracle_calls as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "expected ≈3× more calls, got {ratio}"
        );
    }
}
