//! A latency-injecting oracle wrapper for overlapped-resolution tests.
//!
//! [`DelayOracle`] wraps any backend and busy-waits a deterministic amount
//! of wall-clock time per call before answering: a fixed cost per batch
//! plus a cost per key inside it.  It models the round-trip of a remote
//! oracle (an LLM endpoint, a database, a DNS resolver) precisely enough
//! to measure how much of that latency a scan hides by resolving questions
//! on background threads — without any nondeterminism in the *answers*,
//! which are exactly the backend's.
//!
//! The wait is a spin (`std::hint::spin_loop`) by default, not
//! `thread::sleep`: sleeps have coarse, platform-dependent wakeups that
//! would add noise of the same magnitude as the latency being modeled.
//! [`DelayOracle::sleeping`] opts into sleeping instead — the right model
//! when the point is that *waiting releases the CPU* (e.g. measuring how
//! much latency concurrent workers hide on a loaded machine), at the
//! price of that coarser wakeup.

use std::time::{Duration, Instant};

use semre_oracle::{Oracle, QueryKey};

/// An [`Oracle`] decorator that charges deterministic wall-clock latency
/// per call: `per_batch` once per `resolve_batch` (or `holds`) invocation,
/// plus `per_key` for every key answered.
///
/// Answers are delegated verbatim to the wrapped backend, so wrapping
/// never changes verdicts — only timing.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use semre_oracle::{Oracle, PredicateOracle};
/// use semre_workloads::DelayOracle;
///
/// let backend = PredicateOracle::new(|_q: &str, text: &[u8]| !text.is_empty());
/// let oracle = DelayOracle::new(backend, Duration::from_micros(200), Duration::ZERO);
/// assert!(oracle.holds("nonempty", b"x"));
/// assert!(!oracle.holds("nonempty", b""));
/// ```
#[derive(Debug)]
pub struct DelayOracle<O> {
    inner: O,
    per_batch: Duration,
    per_key: Duration,
    sleep: bool,
}

impl<O> DelayOracle<O> {
    /// Wraps `inner`, charging `per_batch` per backend call and `per_key`
    /// per key answered.  The wait busy-spins (precise, but holds the
    /// CPU); see [`DelayOracle::sleeping`] for the yielding variant.
    pub fn new(inner: O, per_batch: Duration, per_key: Duration) -> Self {
        DelayOracle {
            inner,
            per_batch,
            per_key,
            sleep: false,
        }
    }

    /// Like [`DelayOracle::new`], but the wait `thread::sleep`s instead of
    /// spinning, releasing the CPU to other workers for its duration —
    /// the faithful model of a *remote* round-trip, where the caller's
    /// core is genuinely free while the oracle thinks.
    pub fn sleeping(inner: O, per_batch: Duration, per_key: Duration) -> Self {
        DelayOracle {
            inner,
            per_batch,
            per_key,
            sleep: true,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The simulated latency of answering `keys` questions in one call.
    pub fn cost_of(&self, keys: usize) -> Duration {
        self.per_batch + self.per_key * keys as u32
    }

    fn wait(&self, keys: usize) {
        let cost = self.cost_of(keys);
        if self.sleep {
            if !cost.is_zero() {
                std::thread::sleep(cost);
            }
        } else {
            spin_for(cost);
        }
    }
}

/// Busy-waits for `d` of wall-clock time.
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

impl<O: Oracle> Oracle for DelayOracle<O> {
    fn holds(&self, query: &str, text: &[u8]) -> bool {
        self.wait(1);
        self.inner.holds(query, text)
    }

    fn resolve_batch(&self, batch: &[QueryKey<'_>]) -> Vec<bool> {
        self.wait(batch.len());
        self.inner.resolve_batch(batch)
    }

    fn describe(&self) -> String {
        format!(
            "delay({:?}/batch + {:?}/key over {})",
            self.per_batch,
            self.per_key,
            self.inner.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_oracle::ConstOracle;

    #[test]
    fn answers_are_the_backends() {
        let oracle = DelayOracle::new(
            ConstOracle::new(true),
            Duration::from_micros(50),
            Duration::from_micros(10),
        );
        assert!(oracle.holds("q", b"text"));
        let keys = [QueryKey::new("q", b"a"), QueryKey::new("q", b"b")];
        assert_eq!(oracle.resolve_batch(&keys), vec![true, true]);
        assert!(oracle.describe().starts_with("delay("));
    }

    #[test]
    fn latency_is_actually_charged() {
        let oracle = DelayOracle::new(
            ConstOracle::new(false),
            Duration::from_millis(2),
            Duration::ZERO,
        );
        let start = Instant::now();
        oracle.holds("q", b"x");
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(oracle.cost_of(3), Duration::from_millis(2));

        let per_key = DelayOracle::new(
            ConstOracle::new(false),
            Duration::ZERO,
            Duration::from_millis(1),
        );
        assert_eq!(per_key.cost_of(3), Duration::from_millis(3));
    }

    #[test]
    fn sleeping_variant_charges_and_delegates_identically() {
        let oracle = DelayOracle::sleeping(
            ConstOracle::new(true),
            Duration::from_millis(2),
            Duration::ZERO,
        );
        let start = Instant::now();
        assert!(oracle.holds("q", b"x"));
        assert!(start.elapsed() >= Duration::from_millis(2));
    }
}
