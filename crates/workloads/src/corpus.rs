//! Synthetic benchmark corpora.
//!
//! The paper evaluates on two datasets: a corpus of spam e-mails and a
//! corpus of Java source code downloaded from GitHub (Section 5), filtered
//! to ASCII lines of at most 1 000 characters.  Neither corpus is
//! redistributable, so this module generates deterministic synthetic
//! stand-ins with the same *shape*: the same kinds of lines (subject lines,
//! sender addresses, URLs, packet logs, string literals, identifiers, file
//! paths, plain code/text), planted positives for each of the nine
//! benchmark SemREs at controllable rates, and a right-skewed line-length
//! distribution comparable to Fig. 10 (most lines well under 200
//! characters, a long tail up to 1 000).
//!
//! Generation is seeded ([`crate::rng::StdRng`]), so corpora — and therefore
//! every downstream measurement — are reproducible.

use crate::rng::StdRng;

/// Which of the paper's two datasets a corpus models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// The spam e-mail corpus.
    Spam,
    /// The Java source-code corpus.
    Java,
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataset::Spam => write!(f, "Spam"),
            Dataset::Java => write!(f, "Code"),
        }
    }
}

/// A generated corpus: a named list of text lines.
#[derive(Clone, Debug)]
pub struct Corpus {
    dataset: Dataset,
    lines: Vec<String>,
}

impl Corpus {
    /// Which dataset this corpus models.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The lines of the corpus.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the corpus has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total size in bytes (excluding line terminators).
    pub fn total_bytes(&self) -> usize {
        self.lines.iter().map(String::len).sum()
    }

    /// Histogram of line lengths with the given bucket width, as
    /// `(bucket_start, count)` pairs — the top row of Fig. 10.
    pub fn length_histogram(&self, bucket: usize) -> Vec<(usize, usize)> {
        assert!(bucket > 0, "bucket width must be positive");
        let mut counts: Vec<usize> = Vec::new();
        for line in &self.lines {
            let b = line.len() / bucket;
            if counts.len() <= b {
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i * bucket, c))
            .collect()
    }

    /// Retains only lines of at most `max_len` bytes, mirroring the
    /// filtering applied for the paper's Fig. 10 (≤ 200 characters).
    pub fn truncated_to(&self, max_len: usize) -> Corpus {
        Corpus {
            dataset: self.dataset,
            lines: self
                .lines
                .iter()
                .filter(|l| l.len() <= max_len)
                .cloned()
                .collect(),
        }
    }
}

/// Ground truth produced alongside the corpora, used to populate the
/// non-LLM oracles so that generator and oracle agree on which lines are
/// genuine positives.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Domains that exist, with registration years.
    pub live_domains: Vec<(String, u32)>,
    /// Domains that do not exist (used by `edom` positives).
    pub dead_domains: Vec<String>,
    /// Domains on the phishing list.
    pub phishing_domains: Vec<String>,
    /// File paths that exist on the simulated file system.
    pub existing_paths: Vec<String>,
}

// ---------------------------------------------------------------------------
// Word material
// ---------------------------------------------------------------------------

const COMMON_WORDS: &[&str] = &[
    "the",
    "quarterly",
    "report",
    "meeting",
    "schedule",
    "update",
    "project",
    "review",
    "notes",
    "team",
    "budget",
    "request",
    "invoice",
    "delivery",
    "status",
    "holiday",
    "travel",
    "photos",
    "family",
    "weekend",
    "plans",
    "reminder",
    "agenda",
    "minutes",
    "draft",
    "final",
    "version",
    "please",
    "attached",
    "forward",
    "regards",
    "thanks",
    "urgent",
    "action",
    "required",
];

const SPAM_WORDS: &[&str] = &[
    "cheap",
    "discount",
    "offer",
    "limited",
    "exclusive",
    "deal",
    "buy",
    "now",
    "online",
    "pharmacy",
    "pills",
    "weight",
    "loss",
    "miracle",
    "free",
    "shipping",
    "guaranteed",
    "results",
];

const MEDICINES: &[&str] = &[
    "viagra",
    "cialis",
    "xanax",
    "tramadol",
    "phentermine",
    "ambien",
    "adderall",
    "hydroxycut",
];

const LIVE_DOMAIN_NAMES: &[&str] = &[
    "example.com",
    "mail.net",
    "university.edu",
    "oldcorp.org",
    "pioneer.io",
    "reliable.co",
    "archive.org",
    "weather.gov",
];

const DEAD_DOMAIN_NAMES: &[&str] = &[
    "bygone.biz",
    "defunct.info",
    "vanished.net",
    "expired.store",
    "ghost.site",
];

const PHISHING_DOMAIN_NAMES: &[&str] = &[
    "login-secure.xyz",
    "verify-account.top",
    "bank-update.click",
    "prize-winner.cam",
];

const RECENT_DOMAIN_NAMES: &[&str] = &[
    "newstartup.io",
    "freshapp.dev",
    "cloudnative.app",
    "trendy.shop",
];

const JAVA_TYPES: &[&str] = &[
    "int",
    "long",
    "double",
    "boolean",
    "String",
    "Object",
    "List<String>",
];

const GOOD_IDENTIFIERS: &[&str] = &[
    "count",
    "userName",
    "totalAmount",
    "parser",
    "index",
    "maxRetries",
    "configPath",
    "isEnabled",
    "bufferSize",
    "resultSet",
];

const BAD_IDENTIFIERS: &[&str] = &[
    "foo",
    "tmp",
    "asdf",
    "my_mixedStyle",
    "xyzw",
    "data_Value",
    "qux",
    "thing",
];

const EXISTING_PATHS: &[&str] = &[
    "/usr/lib/jvm/java-17/bin/javac",
    "/etc/app/config.yaml",
    "/var/log/server/access.log",
    "/opt/tools/bin/runner",
    "/home/build/workspace/Makefile",
];

const MISSING_PATHS: &[&str] = &[
    "/usr/local/legacy/old.so",
    "/tmp/build-1999/output.jar",
    "/mnt/removed/data.csv",
    "/opt/retired/daemon.conf",
    "/home/alumni/thesis.tex",
];

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn pick<'a>(rng: &mut StdRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

fn words(rng: &mut StdRng, source: &[&str], count: usize) -> String {
    (0..count)
        .map(|_| pick(rng, source))
        .collect::<Vec<_>>()
        .join(" ")
}

/// A right-skewed word count: mostly short, occasionally very long.  Keeps
/// generated lines under the paper's 1 000-character cap.
fn skewed_word_count(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100) {
        0..=59 => rng.gen_range(3..12),
        60..=89 => rng.gen_range(12..30),
        90..=97 => rng.gen_range(30..80),
        _ => rng.gen_range(80..100),
    }
}

fn random_ipv4(rng: &mut StdRng, intranet: bool) -> String {
    if intranet {
        format!(
            "10.{}.{}.{}",
            rng.gen_range(0..256),
            rng.gen_range(0..256),
            rng.gen_range(1..255)
        )
    } else {
        format!(
            "{}.{}.{}.{}",
            rng.gen_range(11..224),
            rng.gen_range(0..256),
            rng.gen_range(0..256),
            rng.gen_range(1..255)
        )
    }
}

fn random_secret(rng: &mut StdRng) -> String {
    const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const DIGIT: &[u8] = b"0123456789";
    const SYM: &[u8] = b"!#%&*+-_";
    let len = rng.gen_range(12..24);
    let mut out = String::new();
    for i in 0..len {
        let pool = match i % 4 {
            0 => UPPER,
            1 => LOWER,
            2 => DIGIT,
            _ => SYM,
        };
        out.push(pool[rng.gen_range(0..pool.len())] as char);
    }
    out
}

fn random_username(rng: &mut StdRng) -> String {
    let first = pick(
        rng,
        &[
            "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
        ],
    );
    format!("{}{}", first, rng.gen_range(1..999))
}

/// Generates the spam-e-mail corpus together with its ground truth.
pub fn spam_corpus(seed: u64, lines: usize) -> (Corpus, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(lines);
    let mut truth = GroundTruth::default();
    for &d in LIVE_DOMAIN_NAMES {
        truth
            .live_domains
            .push((d.to_owned(), 1995 + (d.len() as u32 % 10)));
    }
    for &d in RECENT_DOMAIN_NAMES {
        truth.live_domains.push((d.to_owned(), 2015));
    }
    truth
        .dead_domains
        .extend(DEAD_DOMAIN_NAMES.iter().map(|s| s.to_string()));
    truth
        .phishing_domains
        .extend(PHISHING_DOMAIN_NAMES.iter().map(|s| s.to_string()));

    for _ in 0..lines {
        let line = match rng.gen_range(0..100) {
            // Spammy subject line containing a medicine name (matches spam,1
            // and usually spam,2).
            0..=3 => {
                let med = pick(&mut rng, MEDICINES);
                let before = rng.gen_range(1..4);
                let after = rng.gen_range(1..5);
                format!(
                    "Subject: {} {} {}",
                    words(&mut rng, SPAM_WORDS, before),
                    med,
                    words(&mut rng, SPAM_WORDS, after),
                )
            }
            // Benign subject line.
            4..=18 => {
                let count = rng.gen_range(2..9);
                format!("Subject: {}", words(&mut rng, COMMON_WORDS, count))
            }
            // Sender address: mostly live domains, some dead, some recent.
            19..=33 => {
                let (domain, _kind) = match rng.gen_range(0..10) {
                    0..=1 => (pick(&mut rng, DEAD_DOMAIN_NAMES), "dead"),
                    2..=3 => (pick(&mut rng, RECENT_DOMAIN_NAMES), "recent"),
                    _ => (pick(&mut rng, LIVE_DOMAIN_NAMES), "live"),
                };
                format!("From: {}@{}", random_username(&mut rng), domain)
            }
            // URL line: some phishing, some recent, some fine.
            34..=45 => {
                let domain = match rng.gen_range(0..10) {
                    0..=1 => pick(&mut rng, PHISHING_DOMAIN_NAMES),
                    2..=4 => pick(&mut rng, RECENT_DOMAIN_NAMES),
                    _ => pick(&mut rng, LIVE_DOMAIN_NAMES),
                };
                let scheme = if rng.gen_bool(0.5) {
                    "https://"
                } else {
                    "http://www."
                };
                let before = rng.gen_range(1..6);
                let after = rng.gen_range(0..4);
                format!(
                    "{} {}{} {}",
                    words(&mut rng, COMMON_WORDS, before),
                    scheme,
                    domain,
                    words(&mut rng, SPAM_WORDS, after),
                )
            }
            // Mail-server trace with an IP address (mostly foreign).
            46..=57 => {
                let intranet = rng.gen_bool(0.3);
                let ip = random_ipv4(&mut rng, intranet);
                format!("Received: from relay ({}) by mx.example.com", ip)
            }
            // Plain body text of varying length.
            _ => {
                let count = skewed_word_count(&mut rng);
                words(&mut rng, COMMON_WORDS, count)
            }
        };
        out.push(line);
    }
    (
        Corpus {
            dataset: Dataset::Spam,
            lines: out,
        },
        truth,
    )
}

/// Generates the Java-source corpus together with its ground truth.
pub fn java_corpus(seed: u64, lines: usize) -> (Corpus, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(lines);
    let mut truth = GroundTruth::default();
    truth
        .existing_paths
        .extend(EXISTING_PATHS.iter().map(|s| s.to_string()));

    for _ in 0..lines {
        let indent = "    ".repeat(rng.gen_range(0..3));
        let line = match rng.gen_range(0..100) {
            // Hard-coded secret in a string literal (matches `pass`).
            0..=2 => {
                format!(
                    r#"{indent}private static final String API_KEY = "{}";"#,
                    random_secret(&mut rng)
                )
            }
            // Benign string literal.
            3..=17 => {
                let count = rng.gen_range(1..6);
                format!(
                    r#"{indent}String message = "{}";"#,
                    words(&mut rng, COMMON_WORDS, count)
                )
            }
            // File path in a string literal, existing or stale.
            18..=27 => {
                let path = if rng.gen_bool(0.4) {
                    pick(&mut rng, MISSING_PATHS)
                } else {
                    pick(&mut rng, EXISTING_PATHS)
                };
                format!(r#"{indent}File input = new File("{path}");"#)
            }
            // Variable declarations, occasionally with sloppy names.
            28..=57 => {
                let ty = pick(&mut rng, JAVA_TYPES);
                let name = if rng.gen_bool(0.25) {
                    pick(&mut rng, BAD_IDENTIFIERS)
                } else {
                    pick(&mut rng, GOOD_IDENTIFIERS)
                };
                format!("{indent}{ty} {name} = compute{}();", rng.gen_range(0..40))
            }
            // Control flow and calls.
            58..=84 => {
                let id1 = pick(&mut rng, GOOD_IDENTIFIERS);
                let id2 = pick(&mut rng, GOOD_IDENTIFIERS);
                format!(
                    "{indent}if ({id1} > {}) {{ return {id2}.process({id1}); }}",
                    rng.gen_range(0..100)
                )
            }
            // Comments of varying length.
            _ => {
                let count = skewed_word_count(&mut rng);
                format!("{indent}// {}", words(&mut rng, COMMON_WORDS, count))
            }
        };
        out.push(line);
    }
    (
        Corpus {
            dataset: Dataset::Java,
            lines: out,
        },
        truth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        let (a, _) = spam_corpus(7, 200);
        let (b, _) = spam_corpus(7, 200);
        assert_eq!(a.lines(), b.lines());
        let (c, _) = spam_corpus(8, 200);
        assert_ne!(a.lines(), c.lines());
        let (d, _) = java_corpus(7, 200);
        let (e, _) = java_corpus(7, 200);
        assert_eq!(d.lines(), e.lines());
    }

    #[test]
    fn corpora_have_requested_sizes_and_ascii_content() {
        let (spam, _) = spam_corpus(1, 500);
        let (java, _) = java_corpus(1, 500);
        assert_eq!(spam.len(), 500);
        assert_eq!(java.len(), 500);
        assert!(!spam.is_empty());
        assert!(spam.total_bytes() > 5_000);
        for corpus in [&spam, &java] {
            for line in corpus.lines() {
                assert!(line.is_ascii(), "non-ASCII line generated: {line:?}");
                assert!(line.len() <= 1000, "line exceeds the paper's 1000-char cap");
            }
        }
        assert_eq!(spam.dataset(), Dataset::Spam);
        assert_eq!(java.dataset(), Dataset::Java);
        assert_eq!(Dataset::Java.to_string(), "Code");
    }

    #[test]
    fn corpora_contain_each_line_family() {
        let (spam, truth) = spam_corpus(42, 3000);
        let text = spam.lines().join("\n");
        assert!(text.contains("Subject: "));
        assert!(text.contains("From: "));
        assert!(text.contains("http"));
        assert!(text.contains("Received: from relay"));
        assert!(
            MEDICINES.iter().any(|m| text.contains(m)),
            "no medicine planted"
        );
        assert!(!truth.live_domains.is_empty());
        assert!(!truth.phishing_domains.is_empty());

        let (java, jtruth) = java_corpus(42, 3000);
        let jtext = java.lines().join("\n");
        assert!(jtext.contains("String"));
        assert!(jtext.contains("new File("));
        assert!(jtext.contains("API_KEY"));
        assert!(!jtruth.existing_paths.is_empty());
    }

    #[test]
    fn length_histogram_is_right_skewed() {
        let (spam, _) = spam_corpus(3, 4000);
        let hist = spam.length_histogram(50);
        assert!(!hist.is_empty());
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, spam.len());
        // The first couple of buckets hold the majority of lines.
        let head: usize = hist.iter().take(3).map(|&(_, c)| c).sum();
        assert!(
            head * 2 > total,
            "distribution is not right-skewed: {hist:?}"
        );
        // But a tail beyond 200 characters exists.
        assert!(hist.iter().any(|&(start, c)| start >= 200 && c > 0));
    }

    #[test]
    fn truncation_filters_long_lines() {
        let (spam, _) = spam_corpus(5, 2000);
        let short = spam.truncated_to(200);
        assert!(short.len() < spam.len());
        assert!(short.lines().iter().all(|l| l.len() <= 200));
        assert_eq!(short.dataset(), Dataset::Spam);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_bucket() {
        let (spam, _) = spam_corpus(5, 10);
        let _ = spam.length_histogram(0);
    }
}
