//! Fault-injecting oracle wrappers for the fault-tolerance test suite.
//!
//! [`FlakyOracle`] wraps any infallible backend and turns it into a
//! *deterministically unreliable* [`TryOracle`]: calls fail according to
//! a [`FlakySchedule`] — an explicit fail-these-ordinals list, a seeded
//! failure rate, or both — and optional latency spikes model a backend
//! that stalls periodically.  Answers that do get through are exactly the
//! backend's, so a run that survives the faults (e.g. through
//! [`RetryOracle`](semre_oracle::RetryOracle)) must be byte-identical to
//! the fault-free run — the central property the fault-injection suite
//! asserts.
//!
//! Failure decisions are keyed on the call *ordinal* (0-based, counted
//! per wrapper), with the rate decision derived by hashing
//! `seed ⊕ ordinal` rather than drawing from a shared stream — so the
//! schedule is reproducible even when calls arrive from racing threads
//! in different interleavings.  One ordinal is consumed per `try_holds`
//! *or* `try_resolve_batch` call: real backends fail per round trip, not
//! per question, and this matches the resolver pool's per-batch failure
//! completions.
//!
//! [`PanickingOracle`] is the blunter instrument: an infallible
//! [`Oracle`] that *panics* on chosen ordinals, for proving that a
//! resolver worker panic surfaces as a scan error instead of a hang or
//! a process abort.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use semre_oracle::{Oracle, OracleError, OracleErrorKind, QueryKey, TryOracle};

use crate::rng::StdRng;

/// When and how a [`FlakyOracle`] fails.
#[derive(Clone, Debug)]
pub struct FlakySchedule {
    /// Probability in `[0, 1]` that any given call fails (decided
    /// deterministically per ordinal from [`seed`](FlakySchedule::seed)).
    pub fail_rate: f64,
    /// Call ordinals (0-based) that always fail, regardless of rate.
    pub fail_nth: Vec<u64>,
    /// The kind every injected failure carries.
    pub kind: OracleErrorKind,
    /// `Some((every, pause))`: every `every`-th call (ordinals `every`,
    /// `2·every`, …) sleeps `pause` before answering — a periodic
    /// latency spike.
    pub latency_spike: Option<(u64, Duration)>,
    /// Seed of the per-ordinal failure-rate hash.
    pub seed: u64,
}

impl Default for FlakySchedule {
    fn default() -> Self {
        FlakySchedule {
            fail_rate: 0.0,
            fail_nth: Vec::new(),
            kind: OracleErrorKind::Transient,
            latency_spike: None,
            seed: 0,
        }
    }
}

impl FlakySchedule {
    /// A schedule failing each call with probability `fail_rate`,
    /// decided deterministically from `seed`.
    pub fn with_rate(fail_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail_rate),
            "fail rate {fail_rate} out of range"
        );
        FlakySchedule {
            fail_rate,
            seed,
            ..FlakySchedule::default()
        }
    }

    /// A schedule failing exactly the given 0-based call ordinals.
    pub fn with_fail_nth(fail_nth: impl Into<Vec<u64>>) -> Self {
        FlakySchedule {
            fail_nth: fail_nth.into(),
            ..FlakySchedule::default()
        }
    }

    /// Sets the error kind injected failures carry.
    #[must_use]
    pub fn kind(mut self, kind: OracleErrorKind) -> Self {
        self.kind = kind;
        self
    }

    /// Adds a latency spike: every `every`-th call sleeps `pause`.
    #[must_use]
    pub fn spike(mut self, every: u64, pause: Duration) -> Self {
        assert!(every > 0, "spike period must be positive");
        self.latency_spike = Some((every, pause));
        self
    }

    /// Whether the call with this 0-based `ordinal` fails.
    pub fn fails(&self, ordinal: u64) -> bool {
        if self.fail_nth.contains(&ordinal) {
            return true;
        }
        if self.fail_rate <= 0.0 {
            return false;
        }
        // Per-ordinal hash, not a shared stream: the decision for call
        // N is the same no matter which thread makes it or in which
        // order calls interleave.
        StdRng::seed_from_u64(self.seed ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_f64()
            < self.fail_rate
    }
}

/// A deterministic fault injector: wraps an infallible backend as a
/// [`TryOracle`] whose calls fail per a [`FlakySchedule`].
///
/// `FlakyOracle` deliberately does **not** implement `Oracle` — a
/// fallible backend has no honest `bool`-returning shape.  Route it
/// through [`RetryOracle`](semre_oracle::RetryOracle) (or any other
/// `TryOracle` consumer) to re-enter the infallible plane.
///
/// # Example
///
/// ```
/// use semre_oracle::{Oracle, RetryOracle, RetryPolicy, SimLlmOracle, TryOracle};
/// use semre_workloads::{FlakyOracle, FlakySchedule};
///
/// // Fails the first two calls; retries ride over both.
/// let flaky = FlakyOracle::new(SimLlmOracle::new(), FlakySchedule::with_fail_nth([0, 1]));
/// assert!(flaky.try_holds("Medicine name", b"tramadol").is_err());
/// let flaky = FlakyOracle::new(SimLlmOracle::new(), FlakySchedule::with_fail_nth([0, 1]));
/// let oracle = RetryOracle::with_policy(flaky, RetryPolicy::attempts(3));
/// assert!(oracle.holds("Medicine name", b"tramadol"));
/// assert_eq!(oracle.inner().failures(), 2);
/// ```
#[derive(Debug)]
pub struct FlakyOracle<O> {
    inner: O,
    schedule: FlakySchedule,
    calls: AtomicU64,
    failures: AtomicU64,
}

impl<O: Oracle> FlakyOracle<O> {
    /// Wraps `inner` with the given failure schedule.
    pub fn new(inner: O, schedule: FlakySchedule) -> Self {
        FlakyOracle {
            inner,
            schedule,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The active schedule.
    pub fn schedule(&self) -> &FlakySchedule {
        &self.schedule
    }

    /// Calls made so far (each `try_holds` or `try_resolve_batch` is
    /// one call).
    pub fn calls(&self) -> u64 {
        self.calls.load(Relaxed)
    }

    /// Calls that failed per the schedule.
    pub fn failures(&self) -> u64 {
        self.failures.load(Relaxed)
    }

    /// Claims the next ordinal, applies its latency spike, and reports
    /// whether the call fails.
    fn step(&self) -> Result<(), OracleError> {
        let ordinal = self.calls.fetch_add(1, Relaxed);
        if let Some((every, pause)) = self.schedule.latency_spike {
            if ordinal > 0 && ordinal % every == 0 {
                std::thread::sleep(pause);
            }
        }
        if self.schedule.fails(ordinal) {
            self.failures.fetch_add(1, Relaxed);
            return Err(OracleError::new(
                self.schedule.kind,
                format!(
                    "injected {} failure at call {ordinal}",
                    self.schedule.kind.name()
                ),
            ));
        }
        Ok(())
    }
}

impl<O: Oracle> TryOracle for FlakyOracle<O> {
    fn try_holds(&self, query: &str, text: &[u8]) -> Result<bool, OracleError> {
        self.step()?;
        Ok(self.inner.holds(query, text))
    }

    fn try_resolve_batch(&self, batch: &[QueryKey<'_>]) -> Result<Vec<bool>, OracleError> {
        self.step()?;
        Ok(self.inner.resolve_batch(batch))
    }

    fn describe(&self) -> String {
        format!(
            "flaky(rate={}, nth={:?}, {})",
            self.schedule.fail_rate,
            self.schedule.fail_nth,
            self.inner.describe()
        )
    }
}

/// An infallible backend that *panics* on the chosen 0-based call
/// ordinals — the worst-behaved oracle possible, for proving the
/// resolver pool contains worker panics.
#[derive(Debug)]
pub struct PanickingOracle<O> {
    inner: O,
    panic_nth: Vec<u64>,
    calls: AtomicU64,
}

impl<O: Oracle> PanickingOracle<O> {
    /// Wraps `inner`, panicking on each call ordinal in `panic_nth`.
    pub fn new(inner: O, panic_nth: impl Into<Vec<u64>>) -> Self {
        PanickingOracle {
            inner,
            panic_nth: panic_nth.into(),
            calls: AtomicU64::new(0),
        }
    }

    /// Calls made so far (panicking ones included).
    pub fn calls(&self) -> u64 {
        self.calls.load(Relaxed)
    }

    fn step(&self) {
        let ordinal = self.calls.fetch_add(1, Relaxed);
        assert!(
            !self.panic_nth.contains(&ordinal),
            "injected oracle panic at call {ordinal}"
        );
    }
}

impl<O: Oracle> Oracle for PanickingOracle<O> {
    fn holds(&self, query: &str, text: &[u8]) -> bool {
        self.step();
        self.inner.holds(query, text)
    }

    fn resolve_batch(&self, batch: &[QueryKey<'_>]) -> Vec<bool> {
        self.step();
        self.inner.resolve_batch(batch)
    }

    fn describe(&self) -> String {
        format!(
            "panicking(nth={:?}, {})",
            self.panic_nth,
            self.inner.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_oracle::PredicateOracle;

    fn backend() -> PredicateOracle<impl Fn(&str, &[u8]) -> bool + Send + Sync> {
        PredicateOracle::new(|_, t: &[u8]| t.len() % 2 == 0)
    }

    #[test]
    fn fail_nth_schedule_is_exact() {
        let flaky = FlakyOracle::new(backend(), FlakySchedule::with_fail_nth([1, 3]));
        assert_eq!(flaky.try_holds("q", b"ab"), Ok(true)); // call 0
        assert!(flaky.try_holds("q", b"ab").is_err()); // call 1
        assert_eq!(flaky.try_holds("q", b"abc"), Ok(false)); // call 2
        let batch = [QueryKey::new("q", b"ab")];
        assert!(flaky.try_resolve_batch(&batch).is_err()); // call 3
        assert_eq!(flaky.try_resolve_batch(&batch), Ok(vec![true])); // call 4
        assert_eq!(flaky.calls(), 5);
        assert_eq!(flaky.failures(), 2);
        assert!(TryOracle::describe(&flaky).contains("flaky"));
    }

    #[test]
    fn rate_schedule_is_deterministic_and_order_independent() {
        let schedule = FlakySchedule::with_rate(0.3, 42);
        let decisions: Vec<bool> = (0..200).map(|n| schedule.fails(n)).collect();
        // Same schedule, same decisions — in any order.
        let again = FlakySchedule::with_rate(0.3, 42);
        for n in (0..200).rev() {
            assert_eq!(again.fails(n), decisions[n as usize]);
        }
        let failures = decisions.iter().filter(|&&f| f).count();
        assert!(
            (30..90).contains(&failures),
            "rate 0.3 produced {failures}/200 failures"
        );
        // A different seed gives a different schedule.
        let other = FlakySchedule::with_rate(0.3, 43);
        assert_ne!(
            (0..200).map(|n| other.fails(n)).collect::<Vec<_>>(),
            decisions
        );
    }

    #[test]
    fn error_kind_and_answers_pass_through() {
        let flaky = FlakyOracle::new(
            backend(),
            FlakySchedule::with_fail_nth([0]).kind(OracleErrorKind::Timeout),
        );
        let err = flaky.try_holds("q", b"ab").unwrap_err();
        assert_eq!(err.kind, OracleErrorKind::Timeout);
        assert!(err.message.contains("call 0"));
        // Surviving answers are exactly the backend's.
        let batch = [QueryKey::new("q", b"ab"), QueryKey::new("q", b"abc")];
        assert_eq!(flaky.try_resolve_batch(&batch), Ok(vec![true, false]));
    }

    #[test]
    fn panicking_oracle_panics_exactly_on_schedule() {
        let oracle = PanickingOracle::new(backend(), [1u64]);
        assert!(oracle.holds("q", b"ab")); // call 0
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            oracle.holds("q", b"ab") // call 1: boom
        }));
        assert!(caught.is_err());
        assert!(!oracle.holds("q", b"abc")); // call 2
        assert_eq!(oracle.calls(), 3);
        assert!(Oracle::describe(&oracle).contains("panicking"));
    }
}
