//! A minimal, deterministic pseudo-random number generator.
//!
//! The corpus and graph generators only need a seedable uniform source, so
//! rather than pulling in an external crate the workspace vendors a
//! SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014) behind the small
//! subset of the `rand::rngs::StdRng` surface the generators use
//! (`seed_from_u64`, `gen_range`, `gen_bool`).  Unlike `rand`, the stream is
//! guaranteed stable across releases and platforms, which keeps every
//! downstream measurement reproducible.

/// A seedable deterministic generator with a `StdRng`-shaped API.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// The next 64 uniformly distributed bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

/// Integer types [`StdRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Draws a uniform value in `range` from `rng`.
    fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // The spans used here are tiny relative to 2^64, so the
                // modulo bias is far below anything observable.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as Self
            }
        }
    )*};
}

impl_uniform_int!(i32, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
        for _ in 0..100 {
            let v = rng.gen_range(5..6i32);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (2_500..3_500).contains(&hits),
            "p=0.3 produced {hits}/10000"
        );
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).gen_range(3..3i32);
    }
}
