//! The `semred` TCP server.
//!
//! A `TcpListener` accept loop feeding a **bounded** pool of worker
//! threads over a rendezvous channel: at most
//! [`ServerConfig::workers`] connections are served concurrently, and
//! further accepted connections wait in the channel (then the OS
//! listener backlog) rather than spawning unbounded threads.  Each
//! worker owns one connection at a time — request parsing, payload
//! reads, pattern execution, and response writes all happen on that
//! thread, which is the invariant the thread-local oracle routing in
//! [`crate::tenant`] relies on.
//!
//! Shutdown is cooperative: a `SHUTDOWN` request flips a flag and pokes
//! the listener with a loopback connection so the accept loop observes
//! it; the accept loop then closes the channel and joins the workers.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Mutex};

use semre::oracle::persist::{PersistConfig, PersistentAnswerStore};
use semre::{OracleSpec, SemRegexBuilder};

use crate::cache::{CacheEntry, PatternCache};
use crate::proto::{self, Request};
use crate::tenant::{bind_session, RoutedOracle, TenantRegistry};

/// Everything `semred` needs to come up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads = max concurrent connections.
    pub workers: usize,
    /// Compiled-pattern LRU capacity.
    pub pattern_capacity: usize,
    /// Path of the persistent answer log; `None` disables persistence.
    pub answer_log: Option<PathBuf>,
    /// Durability / compaction knobs for the answer log.
    pub persist: PersistConfig,
    /// Max backend oracle questions per tenant (`None` = unlimited).
    pub budget: Option<u64>,
    /// Wall-clock ceiling per `SCAN` request (`None` = unlimited).  A
    /// scan that overruns is aborted at the next line boundary with an
    /// `ERR 2`, so one slow request cannot wedge a worker forever.
    pub request_timeout: Option<std::time::Duration>,
    /// Max requests one connection may issue (`None` = unlimited).  The
    /// request over the limit is answered with a final `ERR 2` line and
    /// the connection is closed cleanly — never hung.
    pub max_requests_per_conn: Option<u64>,
    /// Max bytes one connection may send — request lines plus payloads
    /// (`None` = unlimited).  Enforced before the oversized payload is
    /// read, with the same final-`ERR 2`-then-close discipline.
    pub max_bytes_per_conn: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            pattern_capacity: 64,
            answer_log: None,
            persist: PersistConfig::default(),
            budget: None,
            request_timeout: None,
            max_requests_per_conn: None,
            max_bytes_per_conn: None,
        }
    }
}

/// Shared server state: the pattern cache, the tenant registry (which
/// owns the persistent store), and global counters.
#[derive(Debug)]
struct DaemonState {
    addr: SocketAddr,
    patterns: Mutex<PatternCache>,
    tenants: TenantRegistry,
    requests: AtomicU64,
    shutdown: AtomicBool,
    request_timeout: Option<std::time::Duration>,
    max_requests_per_conn: Option<u64>,
    max_bytes_per_conn: Option<u64>,
}

/// A bound, not-yet-running `semred` server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<DaemonState>,
    workers: usize,
}

/// A running server spawned on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    /// The address the server is listening on (with the real port).
    pub addr: SocketAddr,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Waits for the server to shut down.
    ///
    /// # Errors
    ///
    /// The accept loop's I/O error, if it died of one.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> std::io::Result<()> {
        self.join.join().expect("semred server thread panicked")
    }
}

impl Server {
    /// Binds the listener and opens (replaying) the answer log.
    ///
    /// # Errors
    ///
    /// Socket errors, and answer-log open errors (including a log file
    /// that is not an answer log — see
    /// [`PersistentAnswerStore::open`]).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let persist = match &config.answer_log {
            Some(path) => Some(Arc::new(PersistentAnswerStore::open_with(
                path,
                config.persist.clone(),
            )?)),
            None => None,
        };
        let state = Arc::new(DaemonState {
            addr,
            patterns: Mutex::new(PatternCache::new(config.pattern_capacity)),
            tenants: TenantRegistry::new(persist, config.budget),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            request_timeout: config.request_timeout,
            max_requests_per_conn: config.max_requests_per_conn,
            max_bytes_per_conn: config.max_bytes_per_conn,
        });
        Ok(Server {
            listener,
            state,
            workers: config.workers.max(1),
        })
    }

    /// The bound address (the real port when the config asked for `0`).
    ///
    /// # Errors
    ///
    /// The socket's `local_addr` error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        Ok(self.state.addr)
    }

    /// Serves until a `SHUTDOWN` request arrives.  Blocks the calling
    /// thread.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors; per-connection errors only drop
    /// that connection.
    pub fn run(self) -> std::io::Result<()> {
        let (handoff, incoming) = mpsc::sync_channel::<TcpStream>(self.workers);
        let incoming = Arc::new(Mutex::new(incoming));
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let incoming = incoming.clone();
            let state = self.state.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("semred-worker-{i}"))
                    .spawn(move || loop {
                        let next = incoming.lock().expect("worker queue poisoned").recv();
                        let Ok(stream) = next else {
                            return; // channel closed: server is draining
                        };
                        // A connection that dies mid-request only costs
                        // itself; the worker moves on.
                        let _ = handle_connection(&state, stream);
                    })?,
            );
        }

        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Accept errors (e.g. EMFILE) are transient; only
                    // stop if shutdown was requested meanwhile.
                    if self.state.shutdown.load(SeqCst) {
                        break;
                    }
                    return Err(e);
                }
            };
            if self.state.shutdown.load(SeqCst) {
                // Either the shutdown wake-up connection or a late
                // client; both are dropped.
                drop(stream);
                break;
            }
            if handoff.send(stream).is_err() {
                break; // all workers gone
            }
        }
        drop(handoff);
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(store) = self.state.tenants.persist() {
            let _ = store.sync();
        }
        Ok(())
    }

    /// Runs the server on a background thread; the returned handle has
    /// the bound address.
    ///
    /// # Errors
    ///
    /// Thread-spawn errors.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.state.addr;
        let join = std::thread::Builder::new()
            .name("semred-accept".to_owned())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, join })
    }
}

/// Serves one connection until EOF, `QUIT`, `SHUTDOWN`, or an I/O error.
fn handle_connection(state: &Arc<DaemonState>, stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Tenancy is per connection: `TENANT` renames, everyone starts as
    // "default".
    let mut tenant = "default".to_owned();
    let mut line = String::new();
    // Connection-level limits: both counters cover everything the peer
    // sent (request lines and payloads).  Exceeding a limit is a clean
    // refusal — one final `ERR 2` line, flush, close — so a limited
    // client always reads a parseable response, never a hang.
    let mut served: u64 = 0;
    let mut received: u64 = 0;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // clean EOF
        }
        served += 1;
        received += line.len() as u64;
        if let Some(max) = state.max_requests_per_conn {
            if served > max {
                writeln!(
                    writer,
                    "ERR 2 connection limit: more than {max} request(s) on one connection"
                )?;
                writer.flush()?;
                return Ok(());
            }
        }
        if let Some(max) = state.max_bytes_per_conn {
            if received > max {
                writeln!(
                    writer,
                    "ERR 2 connection limit: more than {max} byte(s) on one connection"
                )?;
                writer.flush()?;
                return Ok(());
            }
        }
        state.requests.fetch_add(1, Relaxed);
        let request = match proto::parse_request(line.trim_end_matches('\n')) {
            Ok(request) => request,
            Err(message) => {
                // A parse error may precede an unread payload we cannot
                // locate; dropping the connection keeps the stream from
                // desynchronizing.
                writeln!(writer, "ERR 2 {message}")?;
                writer.flush()?;
                return Ok(());
            }
        };
        match request {
            Request::Quit => {
                writer.write_all(b"OK 0 bye\n")?;
                writer.flush()?;
                return Ok(());
            }
            Request::Shutdown => {
                state.shutdown.store(true, SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(state.addr);
                if let Some(store) = state.tenants.persist() {
                    let _ = store.sync();
                }
                writer.write_all(b"OK 0 bye\n")?;
                writer.flush()?;
                return Ok(());
            }
            Request::Ping => writer.write_all(b"OK 0 pong\n")?,
            Request::Tenant { name } => {
                tenant = name;
                writer.write_all(b"OK 0\n")?;
            }
            Request::Stats => {
                let payload = render_stats(state);
                writeln!(writer, "OK 0 {}", payload.len())?;
                writer.write_all(payload.as_bytes())?;
            }
            Request::Compile { spec, pattern } => match compile(state, &tenant, &spec, &pattern) {
                Ok((entry, cached)) => writeln!(
                    writer,
                    "OK 0 handle={} cache={}",
                    entry.handle,
                    if cached { "hit" } else { "new" }
                )?,
                Err(message) => writeln!(writer, "ERR 2 {message}")?,
            },
            Request::Match { handle, len }
            | Request::Find { handle, len }
            | Request::Scan { handle, len } => {
                // The payload counts against the byte limit *before* it
                // is read: refusing is closing, so the unread bytes can
                // never desynchronize a later request.
                received += len as u64;
                if let Some(max) = state.max_bytes_per_conn {
                    if received > max {
                        writeln!(
                            writer,
                            "ERR 2 connection limit: more than {max} byte(s) on one connection"
                        )?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
                let mut payload = vec![0u8; len];
                reader.read_exact(&mut payload)?;
                match execute(state, &tenant, &request, handle, &payload) {
                    Ok(response) => writer.write_all(&response)?,
                    Err(message) => writeln!(writer, "ERR 2 {message}")?,
                }
            }
        }
        writer.flush()?;
    }
}

/// Resolves a `COMPILE`: parse the spec, get the tenant's session (the
/// compile-time ε-probes must route somewhere), and hit the LRU.
fn compile(
    state: &DaemonState,
    tenant: &str,
    spec_token: &str,
    pattern: &str,
) -> Result<(Arc<CacheEntry>, bool), String> {
    let spec = OracleSpec::parse(spec_token).map_err(|e| e.to_string())?;
    let spec_tag = spec.wire_token().map_err(|e| e.to_string())?;
    let session = state
        .tenants
        .session(tenant, &spec, &spec_tag)
        .map_err(|e| e.to_string())?;
    let _guard = bind_session(session);
    let mut patterns = state.patterns.lock().expect("pattern cache poisoned");
    patterns
        .get_or_compile(&spec, &spec_tag, pattern, || {
            SemRegexBuilder::new()
                .batched(true)
                .build_shared(pattern, Arc::new(RoutedOracle))
        })
        .map_err(|e| e.to_string())
}

/// Executes a payload-carrying request under the tenant's session.
fn execute(
    state: &Arc<DaemonState>,
    tenant: &str,
    request: &Request,
    handle: u64,
    payload: &[u8],
) -> Result<Vec<u8>, String> {
    let entry = state
        .patterns
        .lock()
        .expect("pattern cache poisoned")
        .get(handle)
        .ok_or_else(|| format!("unknown handle {handle} (evicted or never compiled)"))?;
    if let Err(spent) = state.tenants.charge(tenant) {
        let budget = state.tenants.budget().unwrap_or(0);
        return Err(format!(
            "tenant {tenant} oracle budget exhausted ({spent}/{budget} backend questions)"
        ));
    }
    let session = state
        .tenants
        .session(tenant, &entry.spec, &entry.spec_tag)
        .map_err(|e| e.to_string())?;
    let _guard = bind_session(session);
    // A fault left over from an earlier request on this worker thread
    // must not leak into this one (a pending fault also suppresses
    // answer-store inserts).
    semre::clear_fault();
    let mut response = Vec::new();
    match request {
        Request::Match { .. } => {
            let status = i32::from(!entry.re.is_match(payload));
            check_fault()?;
            response.extend_from_slice(format!("OK {status}\n").as_bytes());
        }
        Request::Find { .. } => {
            let found = entry.re.find(payload);
            check_fault()?;
            match found {
                Some(found) => response.extend_from_slice(
                    format!("OK 0 {} {}\n", found.start(), found.end()).as_bytes(),
                ),
                None => response.extend_from_slice(b"OK 1\n"),
            }
        }
        Request::Scan { .. } => {
            // Same per-line membership semantics as one-shot `grepo`:
            // `scan_reader` splits exactly like `str::lines` and decides
            // each line on the batched plane.  The control is polled at
            // line boundaries: an admitted line always completes, then a
            // blown deadline or budget aborts with an `ERR 2` instead of
            // wedging the worker (or billing the tenant forever).
            let control = scan_control(state, tenant);
            let mut lines: u64 = 0;
            let mut matched: u64 = 0;
            let mut body = Vec::new();
            for verdict in entry.re.scan_reader(payload) {
                let verdict = verdict.map_err(|e| e.to_string())?;
                // The first line rides the request-start `charge()` (a
                // request admitted under budget does real work even if
                // that work crosses the line); every later line re-checks
                // at its boundary, so a long scan stops early instead of
                // spending to the end of the payload or wedging the
                // worker past its deadline.
                if lines > 0 {
                    if let Some(interrupt) = control.interrupted() {
                        if matches!(interrupt, semre::ScanInterrupt::Budget(_)) {
                            // One denial per aborted scan, like a refused
                            // request — not one per remaining line.
                            state.tenants.note_denial(tenant);
                        }
                        return Err(format!("scan aborted after {lines} line(s): {interrupt}"));
                    }
                }
                if let Err(fault) = check_fault() {
                    return Err(format!("line {}: {fault}", verdict.index));
                }
                lines += 1;
                if verdict.matched {
                    matched += 1;
                    body.extend_from_slice(&verdict.bytes);
                    body.push(b'\n');
                }
            }
            let status = i32::from(matched == 0);
            response.extend_from_slice(
                format!("OK {status} {lines} {matched} {}\n", body.len()).as_bytes(),
            );
            response.extend_from_slice(&body);
        }
        _ => unreachable!("execute only sees payload requests"),
    }
    Ok(response)
}

/// Surfaces a pending oracle fault as the request's error.  The daemon
/// has no degrade policy: a backend that failed even after retries makes
/// the verdict untrustworthy, and the client sees `ERR 2` (it can re-run
/// warm — every answered question is already in the store).
fn check_fault() -> Result<(), String> {
    match semre::take_fault() {
        None => Ok(()),
        Some(fault) => Err(fault.to_string()),
    }
}

/// The per-request [`ScanControl`](semre::ScanControl): the configured
/// request deadline plus a non-denying budget probe, so a scan whose
/// tenant crosses its budget mid-request stops at the next line instead
/// of running (and spending) to completion.
fn scan_control(state: &Arc<DaemonState>, tenant: &str) -> semre::ScanControl {
    let mut control = semre::ScanControl::none();
    if let Some(timeout) = state.request_timeout {
        control = control.with_timeout(timeout);
    }
    if state.tenants.budget().is_some() {
        let probe_state = state.clone();
        let probe_tenant = tenant.to_owned();
        control = control.with_budget(Arc::new(move || {
            probe_state.tenants.over_budget(&probe_tenant)
        }));
    }
    control
}

/// Renders the `STATS` payload: one server line, one store line (when
/// persistence is on), then one deterministic line per tenant.
fn render_stats(state: &DaemonState) -> String {
    let mut out = String::new();
    let patterns = state.patterns.lock().expect("pattern cache poisoned");
    let cache = patterns.stats();
    out.push_str(&format!(
        "requests={} patterns={} compiles={} cache_hits={} evictions={} tenants={} budget={}\n",
        state.requests.load(Relaxed),
        patterns.len(),
        cache.compiles,
        cache.hits,
        cache.evictions,
        state.tenants.len(),
        match state.tenants.budget() {
            Some(budget) => budget.to_string(),
            None => "none".to_owned(),
        },
    ));
    drop(patterns);
    if let Some(store) = state.tenants.persist() {
        let replay = store.replay_report();
        out.push_str(&format!(
            "store: entries={} replayed={} appended={} file_bytes={} compactions={} syncs={} write_errors={}\n",
            store.len(),
            replay.records,
            store.appended(),
            store.file_bytes(),
            store.compactions(),
            store.syncs(),
            store.write_errors(),
        ));
    }
    let rows = state.tenants.snapshot();
    // One aggregate tier-routing line when any tenant has a `tiered:`
    // session, merged by label across tenants — absent otherwise, so
    // flat-backend deployments keep their exact historical STATS shape.
    let mut tiers = semre::TierStats::default();
    for row in &rows {
        tiers.merge(&row.tiers);
    }
    if !tiers.tiers.is_empty() {
        out.push_str(&format!("tiers: {}\n", tiers.render()));
    }
    for row in rows {
        out.push_str(&format!(
            "tenant {}: submitted={} deduped={} persisted_hits={} backend_keys={} entries={} budget_denied={}\n",
            row.name,
            row.stats.keys_submitted,
            row.stats.keys_deduped,
            row.persisted_hits,
            row.stats.backend_keys,
            row.entries,
            row.budget_denied,
        ));
    }
    out
}
