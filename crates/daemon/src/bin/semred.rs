//! `semred` — the SemRE match daemon.
//!
//! ```text
//! semred [OPTIONS]                 start the daemon
//! semred --ping ADDR               liveness probe (exit 0/1)
//! semred --stats ADDR              print the server's STATS payload
//! semred --shutdown ADDR           ask the server to stop
//!
//! Options:
//!   --addr HOST:PORT       bind address (default 127.0.0.1:7878; port 0
//!                          picks a free port, printed on stdout)
//!   --workers N            max concurrent connections (default 4)
//!   --patterns N           compiled-pattern LRU capacity (default 64)
//!   --answer-log FILE      persist oracle answers to FILE (replayed on
//!                          startup; survives restarts)
//!   --budget N             max backend oracle questions per tenant
//!   --request-timeout S    abort a SCAN that runs longer than S seconds
//!                          (fractional allowed) with an ERR at the next
//!                          line boundary, so one slow request cannot
//!                          wedge a worker
//!   --max-requests-per-conn N
//!                          close a connection (after a final ERR line)
//!                          once it has issued N requests
//!   --max-bytes-per-conn N close a connection (after a final ERR line)
//!                          once it has sent N bytes of requests and
//!                          payloads
//!   --sync-every N         fsync the log every N records (default 64)
//!   --compact-bytes N      compact the log past N bytes (default 8 MiB)
//!   --max-log-bytes N      hard cap on the answer log size: compact
//!                          whenever the file would pass N bytes
//!   --max-log-generations N keep up to N rotated answer-log
//!                          generations (log.1 .. log.N) before paying a
//!                          full merge-compaction (default 0: always
//!                          compact in place)
//! ```
//!
//! On startup the daemon prints `semred listening on <addr>` so scripts
//! binding port 0 can discover the real port.

use std::io::Write;

use semre_daemon::{DaemonClient, Server, ServerConfig};

const USAGE: &str = "usage: semred [--addr HOST:PORT] [--workers N] [--patterns N] \
[--answer-log FILE] [--budget N] [--request-timeout S] [--max-requests-per-conn N] \
[--max-bytes-per-conn N] [--sync-every N] [--compact-bytes N] [--max-log-bytes N] \
[--max-log-generations N]";

fn fail(message: &str) -> ! {
    eprintln!("semred: {message}");
    eprintln!("{USAGE}");
    eprintln!("       semred --ping ADDR | --stats ADDR | --shutdown ADDR");
    std::process::exit(2);
}

fn client(addr: &str) -> DaemonClient {
    DaemonClient::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")))
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ping" => {
                let mut client = client(&value(&mut args, "--ping"));
                match client.ping() {
                    Ok(()) => {
                        println!("pong");
                        return;
                    }
                    Err(e) => fail(&format!("ping failed: {e}")),
                }
            }
            "--stats" => {
                let mut client = client(&value(&mut args, "--stats"));
                match client.stats() {
                    Ok(stats) => {
                        print!("{stats}");
                        return;
                    }
                    Err(e) => fail(&format!("stats failed: {e}")),
                }
            }
            "--shutdown" => {
                let mut client = client(&value(&mut args, "--shutdown"));
                match client.shutdown() {
                    Ok(()) => return,
                    Err(e) => fail(&format!("shutdown failed: {e}")),
                }
            }
            "--addr" => config.addr = value(&mut args, "--addr"),
            "--workers" => {
                config.workers = value(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs a number"));
            }
            "--patterns" => {
                config.pattern_capacity = value(&mut args, "--patterns")
                    .parse()
                    .unwrap_or_else(|_| fail("--patterns needs a number"));
            }
            "--answer-log" => {
                config.answer_log = Some(value(&mut args, "--answer-log").into());
            }
            "--budget" => {
                config.budget = Some(
                    value(&mut args, "--budget")
                        .parse()
                        .unwrap_or_else(|_| fail("--budget needs a number")),
                );
            }
            "--request-timeout" => {
                let secs: f64 = value(&mut args, "--request-timeout")
                    .parse()
                    .unwrap_or_else(|_| fail("--request-timeout needs seconds"));
                if !secs.is_finite() || secs <= 0.0 {
                    fail("--request-timeout must be positive");
                }
                config.request_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--max-requests-per-conn" => {
                config.max_requests_per_conn = Some(
                    value(&mut args, "--max-requests-per-conn")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-requests-per-conn needs a number")),
                );
            }
            "--max-bytes-per-conn" => {
                config.max_bytes_per_conn = Some(
                    value(&mut args, "--max-bytes-per-conn")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-bytes-per-conn needs a number")),
                );
            }
            "--max-log-bytes" => {
                config.persist.max_log_bytes = Some(
                    value(&mut args, "--max-log-bytes")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-log-bytes needs a number")),
                );
            }
            "--max-log-generations" => {
                config.persist.max_generations = value(&mut args, "--max-log-generations")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-log-generations needs a number"));
            }
            "--sync-every" => {
                config.persist.sync_every = value(&mut args, "--sync-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--sync-every needs a number"));
            }
            "--compact-bytes" => {
                config.persist.compact_bytes = value(&mut args, "--compact-bytes")
                    .parse()
                    .unwrap_or_else(|_| fail("--compact-bytes needs a number"));
            }
            "--help" | "-h" => {
                println!("semred: a long-running SemRE match daemon");
                println!("{USAGE}");
                println!("       semred --ping ADDR | --stats ADDR | --shutdown ADDR");
                return;
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    let server = Server::bind(config).unwrap_or_else(|e| fail(&format!("cannot start: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("cannot resolve bound address: {e}")));
    println!("semred listening on {addr}");
    // Scripts wait for this line before connecting; make sure it is out.
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        fail(&format!("server error: {e}"));
    }
}
