//! The daemon's LRU of compiled patterns.
//!
//! Elaborating a SemRE (parse → Thompson construction → ε-feasibility
//! closure) is pure CPU work the daemon should pay once per distinct
//! `(OracleSpec, pattern)` pair, not once per client.  `COMPILE` requests
//! therefore go through this cache: a hit returns the existing handle
//! (and refreshes its recency), a miss compiles and may evict the least
//! recently used entry.  Evicted handles become invalid — a client
//! holding one gets `ERR 2 unknown handle …` and simply re-`COMPILE`s.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use semre::{OracleSpec, SemRegex};

/// One compiled pattern plus the identity it is cached under.
#[derive(Debug)]
pub struct CacheEntry {
    /// The handle clients address this pattern by.
    pub handle: u64,
    /// The parsed oracle spec (`build()`-able per tenant).
    pub spec: OracleSpec,
    /// The canonical spec tag (cache / answer-log key).
    pub spec_tag: String,
    /// The source pattern.
    pub pattern: String,
    /// The compiled pattern (oracle questions route through the
    /// per-tenant session bound at request time; see [`crate::tenant`]).
    pub re: Arc<SemRegex>,
}

/// Counters the cache exposes through `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `COMPILE`s answered from the cache.
    pub hits: u64,
    /// Patterns actually compiled.
    pub compiles: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// An LRU map `(spec_tag, pattern) → CacheEntry` with stable handles.
#[derive(Debug)]
pub struct PatternCache {
    capacity: usize,
    next_handle: u64,
    by_key: HashMap<(String, String), u64>,
    entries: HashMap<u64, Arc<CacheEntry>>,
    /// Recency order, front = least recently used.
    order: VecDeque<u64>,
    stats: CacheStats,
}

impl PatternCache {
    /// An empty cache holding at most `capacity` compiled patterns.
    pub fn new(capacity: usize) -> Self {
        PatternCache {
            capacity: capacity.max(1),
            next_handle: 1,
            by_key: HashMap::new(),
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, handle: u64) {
        if let Some(at) = self.order.iter().position(|&h| h == handle) {
            self.order.remove(at);
        }
        self.order.push_back(handle);
    }

    /// The entry for `handle`, refreshing its recency; `None` for
    /// unknown (or evicted) handles.
    pub fn get(&mut self, handle: u64) -> Option<Arc<CacheEntry>> {
        let entry = self.entries.get(&handle).cloned()?;
        self.touch(handle);
        Some(entry)
    }

    /// The cached handle for `(spec_tag, pattern)`, or compiles via
    /// `compile` and inserts.  Returns `(entry, was_cached)`.
    ///
    /// # Errors
    ///
    /// Whatever `compile` returns; the cache is unchanged on error.
    pub fn get_or_compile<E>(
        &mut self,
        spec: &OracleSpec,
        spec_tag: &str,
        pattern: &str,
        compile: impl FnOnce() -> Result<SemRegex, E>,
    ) -> Result<(Arc<CacheEntry>, bool), E> {
        let key = (spec_tag.to_owned(), pattern.to_owned());
        if let Some(&handle) = self.by_key.get(&key) {
            self.stats.hits += 1;
            let entry = self.entries[&handle].clone();
            self.touch(handle);
            return Ok((entry, true));
        }
        let re = compile()?;
        self.stats.compiles += 1;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                if let Some(evicted) = self.entries.remove(&oldest) {
                    self.by_key
                        .remove(&(evicted.spec_tag.clone(), evicted.pattern.clone()));
                    self.stats.evictions += 1;
                }
            }
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        let entry = Arc::new(CacheEntry {
            handle,
            spec: spec.clone(),
            spec_tag: spec_tag.to_owned(),
            pattern: pattern.to_owned(),
            re: Arc::new(re),
        });
        self.by_key.insert(key, handle);
        self.entries.insert(handle, entry.clone());
        self.order.push_back(handle);
        Ok((entry, false))
    }

    /// Number of patterns currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit / compile / eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semre::SemRegexBuilder;

    fn compile(pattern: &str) -> Result<SemRegex, semre::Error> {
        SemRegexBuilder::new().build(pattern, semre::ConstOracle::always_true())
    }

    fn spec() -> (OracleSpec, String) {
        let spec = OracleSpec::AlwaysTrue;
        let tag = spec.to_string();
        (spec, tag)
    }

    #[test]
    fn repeat_compiles_hit_and_keep_their_handle() {
        let (spec, tag) = spec();
        let mut cache = PatternCache::new(4);
        let (first, cached) = cache
            .get_or_compile(&spec, &tag, "abc", || compile("abc"))
            .unwrap();
        assert!(!cached);
        assert_eq!(first.handle, 1);
        let (again, cached) = cache
            .get_or_compile(&spec, &tag, "abc", || compile("abc"))
            .unwrap();
        assert!(cached);
        assert_eq!(again.handle, 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                compiles: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(1).is_some());
        assert!(cache.get(99).is_none());
    }

    #[test]
    fn same_pattern_under_different_specs_is_two_entries() {
        let mut cache = PatternCache::new(4);
        let a = OracleSpec::AlwaysTrue;
        let b = OracleSpec::AlwaysFalse;
        let (ea, _) = cache
            .get_or_compile(&a, &a.to_string(), "abc", || compile("abc"))
            .unwrap();
        let (eb, _) = cache
            .get_or_compile(&b, &b.to_string(), "abc", || compile("abc"))
            .unwrap();
        assert_ne!(ea.handle, eb.handle);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_is_lru_and_invalidates_the_handle() {
        let (spec, tag) = spec();
        let mut cache = PatternCache::new(2);
        let h1 = cache
            .get_or_compile(&spec, &tag, "a", || compile("a"))
            .unwrap()
            .0
            .handle;
        let h2 = cache
            .get_or_compile(&spec, &tag, "b", || compile("b"))
            .unwrap()
            .0
            .handle;
        // Touch h1 so h2 is the LRU victim.
        assert!(cache.get(h1).is_some());
        let h3 = cache
            .get_or_compile(&spec, &tag, "c", || compile("c"))
            .unwrap()
            .0
            .handle;
        assert!(cache.get(h2).is_none(), "LRU entry evicted");
        assert!(cache.get(h1).is_some());
        assert!(cache.get(h3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // Re-compiling the evicted pattern gets a *fresh* handle.
        let (fresh, cached) = cache
            .get_or_compile(&spec, &tag, "b", || compile("b"))
            .unwrap();
        assert!(!cached);
        assert_ne!(fresh.handle, h2);
    }

    #[test]
    fn failed_compiles_leave_the_cache_unchanged() {
        let (spec, tag) = spec();
        let mut cache = PatternCache::new(2);
        let result = cache.get_or_compile(&spec, &tag, "(", || compile("("));
        assert!(result.is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().compiles, 0);
    }
}
