//! Tenancy: who asked, who pays, who shares.
//!
//! The daemon serves many clients ("tenants") with one pattern cache and
//! one persistent answer store.  Answers are *shared* — oracle judgements
//! are facts about strings, not about callers, so tenant B benefits from
//! every question tenant A already paid for.  Attribution and budgets are
//! *per tenant*: each `(tenant, spec)` pair gets its own
//! [`SharedSession`], whose counters (`keys_submitted`, `keys_deduped`,
//! `persisted_hits`, `backend_keys`) are exactly the tenant's `STATS`
//! row, and whose `backend_keys` sum is what budgets cap.
//!
//! # Routing
//!
//! Compiled patterns are shared across tenants (the whole point of the
//! LRU), but a [`semre::SemRegex`] binds its oracle at build time.  The
//! daemon squares that circle with a *router*: every cached pattern is
//! built over [`RoutedOracle`], which forwards each question to a
//! thread-local [`SharedSession`] installed by the connection handler for
//! the duration of one request ([`bind_session`]).  This is sound
//! because a request executes entirely on its connection's worker thread
//! — the daemon builds patterns with the default single-threaded,
//! batched configuration, so no oracle question ever leaves the thread.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use semre::oracle::persist::PersistentAnswerStore;
use semre::{
    BatchStats, Error, Oracle, OracleSpec, QueryKey, SharedSession, TierCounters, TierStats,
};

thread_local! {
    static CURRENT_SESSION: RefCell<Option<SharedSession>> = const { RefCell::new(None) };
}

/// An oracle that forwards every question to the thread's currently
/// bound [`SharedSession`].
///
/// # Panics
///
/// Panics if a question arrives with no session bound — an internal
/// invariant violation: the server binds a session (see [`bind_session`])
/// before touching any compiled pattern.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutedOracle;

fn with_current<T>(f: impl FnOnce(&SharedSession) -> T) -> T {
    CURRENT_SESSION.with(|current| {
        let current = current.borrow();
        let session = current
            .as_ref()
            .expect("oracle question with no tenant session bound (server bug)");
        f(session)
    })
}

impl Oracle for RoutedOracle {
    fn holds(&self, query: &str, text: &[u8]) -> bool {
        with_current(|session| session.holds(query, text))
    }

    fn resolve_batch(&self, batch: &[QueryKey<'_>]) -> Vec<bool> {
        with_current(|session| session.resolve_batch(batch))
    }

    fn describe(&self) -> String {
        "routed(per-tenant shared session)".to_owned()
    }
}

/// Binds `session` as the thread's current session until the guard
/// drops.  Bindings do not nest: the previous binding (if any) is
/// restored on drop.
pub fn bind_session(session: SharedSession) -> SessionGuard {
    let previous = CURRENT_SESSION.with(|current| current.borrow_mut().replace(session));
    SessionGuard { previous }
}

/// Restores the previous thread-local session binding on drop.
#[derive(Debug)]
pub struct SessionGuard {
    previous: Option<SharedSession>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT_SESSION.with(|current| *current.borrow_mut() = previous);
    }
}

/// One `(tenant, spec)` session plus the spec's tier counters, when the
/// spec is a `tiered:` registry stack.
#[derive(Clone, Debug)]
struct TenantSession {
    session: SharedSession,
    tiers: Option<Arc<TierCounters>>,
}

/// One tenant's sessions (one per oracle spec) plus budget bookkeeping.
#[derive(Debug, Default)]
struct TenantState {
    sessions: HashMap<String, TenantSession>,
    budget_denied: u64,
}

/// A snapshot of one tenant's counters for `STATS`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Summed batch-plane counters across the tenant's sessions.
    pub stats: BatchStats,
    /// Questions answered by the persistent store.
    pub persisted_hits: u64,
    /// Distinct answers in the tenant's in-memory stores.
    pub entries: usize,
    /// Requests refused because the tenant's oracle budget was spent.
    pub budget_denied: u64,
    /// Per-tier hit/escalation counters, merged by label across the
    /// tenant's `tiered:` sessions (empty when the tenant has none).
    pub tiers: TierStats,
}

/// The per-tenant session registry over one optional persistent store.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, TenantState>>,
    persist: Option<Arc<PersistentAnswerStore>>,
    /// Max backend questions per tenant (`None` = unlimited).
    budget: Option<u64>,
}

impl TenantRegistry {
    /// A registry whose sessions layer over `persist` (when given) and
    /// enforce `budget` backend questions per tenant (when given).
    pub fn new(persist: Option<Arc<PersistentAnswerStore>>, budget: Option<u64>) -> Self {
        TenantRegistry {
            tenants: Mutex::new(HashMap::new()),
            persist,
            budget,
        }
    }

    /// The persistent store sessions record to, if any.
    pub fn persist(&self) -> Option<&Arc<PersistentAnswerStore>> {
        self.persist.as_ref()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, TenantState>> {
        self.tenants.lock().expect("tenant registry poisoned")
    }

    /// The `(tenant, spec)` session, creating it (and building the
    /// spec's backend) on first use.
    ///
    /// # Errors
    ///
    /// [`Error::Oracle`] when the spec's backend cannot be built (e.g. a
    /// missing `set:` file).
    pub fn session(
        &self,
        tenant: &str,
        spec: &OracleSpec,
        spec_tag: &str,
    ) -> Result<SharedSession, Error> {
        let mut tenants = self.lock();
        let state = tenants.entry(tenant.to_owned()).or_default();
        if let Some(entry) = state.sessions.get(spec_tag) {
            return Ok(entry.session.clone());
        }
        let built = spec.build_with_counters()?;
        let session = match &self.persist {
            Some(store) => SharedSession::with_persistence(built.oracle, store.clone(), spec_tag),
            None => SharedSession::new(built.oracle),
        };
        state.sessions.insert(
            spec_tag.to_owned(),
            TenantSession {
                session: session.clone(),
                tiers: built.tiers,
            },
        );
        Ok(session)
    }

    /// Charges `tenant` against its budget: `Ok` when the tenant may
    /// still reach the backend, `Err(spent)` when the budget is
    /// exhausted (the denial is counted).
    ///
    /// Enforcement is request-granular: a request that starts under
    /// budget runs to completion even if its own questions cross the
    /// line — the *next* request is refused.  With a persistent store
    /// this is the natural granularity: refused work can usually be
    /// re-run warm for zero backend questions.
    ///
    /// # Errors
    ///
    /// `Err(spent)` with the backend questions the tenant has already
    /// used.
    pub fn charge(&self, tenant: &str) -> Result<(), u64> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        let mut tenants = self.lock();
        let state = tenants.entry(tenant.to_owned()).or_default();
        let spent: u64 = state
            .sessions
            .values()
            .map(|s| s.session.stats().backend_keys)
            .sum();
        if spent >= budget {
            state.budget_denied += 1;
            return Err(spent);
        }
        Ok(())
    }

    /// Non-denying budget peek: `Some(reason)` when the tenant's backend
    /// spend has reached the budget, `None` otherwise.  Unlike
    /// [`charge`](TenantRegistry::charge) this counts nothing — it is the
    /// mid-scan probe a [`ScanControl`](semre::ScanControl) polls at line
    /// boundaries, where a side effect per line would inflate the denial
    /// counter.
    pub fn over_budget(&self, tenant: &str) -> Option<String> {
        let budget = self.budget?;
        let tenants = self.lock();
        let spent: u64 = tenants
            .get(tenant)?
            .sessions
            .values()
            .map(|s| s.session.stats().backend_keys)
            .sum();
        (spent >= budget)
            .then(|| format!("tenant {tenant} spent {spent}/{budget} backend questions"))
    }

    /// Counts one budget denial against `tenant` — used when a running
    /// request is aborted mid-scan by its budget probe, so the abort
    /// shows up in `STATS` exactly once, like a refused request.
    pub fn note_denial(&self, tenant: &str) {
        self.lock()
            .entry(tenant.to_owned())
            .or_default()
            .budget_denied += 1;
    }

    /// The configured per-tenant budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of tenants seen so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no tenant has connected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-tenant counter snapshots, sorted by name (so `STATS` output
    /// is deterministic).
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let tenants = self.lock();
        let mut rows: Vec<TenantSnapshot> = tenants
            .iter()
            .map(|(name, state)| {
                let mut stats = BatchStats::default();
                let mut persisted_hits = 0;
                let mut entries = 0;
                let mut tiers = TierStats::default();
                for entry in state.sessions.values() {
                    stats = stats.merged(&entry.session.stats());
                    persisted_hits += entry.session.persisted_hits();
                    entries += entry.session.len();
                    if let Some(counters) = &entry.tiers {
                        tiers.merge(&counters.snapshot());
                    }
                }
                TenantSnapshot {
                    name: name.clone(),
                    stats,
                    persisted_hits,
                    entries,
                    budget_denied: state.budget_denied,
                    tiers,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_oracle_forwards_to_the_bound_session() {
        let session = SharedSession::new(OracleSpec::AlwaysTrue.build().unwrap());
        let routed = RoutedOracle;
        {
            let _guard = bind_session(session.clone());
            assert!(routed.holds("q", b"x"));
            assert_eq!(
                routed.resolve_batch(&[QueryKey::new("q", b"x"), QueryKey::new("q", b"y")]),
                [true, true]
            );
        }
        assert_eq!(session.stats().keys_submitted, 3);

        // Bindings restore the previous session on drop.
        let never = SharedSession::new(OracleSpec::AlwaysFalse.build().unwrap());
        let _outer = bind_session(session.clone());
        {
            let _inner = bind_session(never.clone());
            assert!(!routed.holds("q", b"x"));
        }
        assert!(routed.holds("q", b"z"), "outer binding restored");
    }

    #[test]
    #[should_panic(expected = "no tenant session bound")]
    fn routed_oracle_without_a_binding_is_a_server_bug() {
        RoutedOracle.holds("q", b"x");
    }

    #[test]
    fn sessions_are_per_tenant_per_spec_and_reused() {
        let registry = TenantRegistry::new(None, None);
        let spec = OracleSpec::AlwaysTrue;
        let tag = spec.to_string();
        let a1 = registry.session("alice", &spec, &tag).unwrap();
        let a2 = registry.session("alice", &spec, &tag).unwrap();
        a1.holds("q", b"x");
        assert_eq!(a2.stats().keys_submitted, 1, "same session object");
        let b = registry.session("bob", &spec, &tag).unwrap();
        assert_eq!(b.stats().keys_submitted, 0, "tenants do not share counters");
        assert_eq!(registry.len(), 2);
        let rows = registry.snapshot();
        assert_eq!(rows[0].name, "alice");
        assert_eq!(rows[0].stats.keys_submitted, 1);
        assert_eq!(rows[1].name, "bob");
    }

    #[test]
    fn budget_is_charged_per_tenant() {
        let registry = TenantRegistry::new(None, Some(2));
        let spec = OracleSpec::AlwaysTrue;
        let tag = spec.to_string();
        let session = registry.session("alice", &spec, &tag).unwrap();
        assert!(registry.charge("alice").is_ok());
        session.holds("q", b"one");
        session.holds("q", b"two");
        assert_eq!(registry.charge("alice"), Err(2), "budget spent");
        assert_eq!(registry.charge("alice"), Err(2));
        assert!(registry.charge("bob").is_ok(), "budgets are per tenant");
        assert_eq!(registry.snapshot()[0].budget_denied, 2);
    }

    #[test]
    fn bad_spec_surfaces_as_an_oracle_error() {
        let registry = TenantRegistry::new(None, None);
        let spec = OracleSpec::SetFile("/definitely/not/here.tsv".into());
        assert!(registry.session("alice", &spec, &spec.to_string()).is_err());
    }
}
