//! A blocking client for the `semred` protocol.
//!
//! Used by `grepo --daemon` and the smoke tests.  One [`DaemonClient`]
//! wraps one connection; requests are strictly sequential (the protocol
//! has no pipelining), and every `ERR` response surfaces as an
//! [`std::io::Error`] with the server's message.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{Request, MAX_PAYLOAD};

fn protocol_error(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// The result of a `SCAN`: per-line membership over one payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Grep-convention status: `0` some line matched, `1` none did.
    pub status: i32,
    /// Lines scanned.
    pub lines: u64,
    /// Lines that matched.
    pub matched: u64,
    /// The matching lines, newline-terminated, in input order — byte-
    /// identical to what one-shot `grepo` prints for the same input.
    pub payload: Vec<u8>,
}

/// A blocking connection to a `semred` server.
#[derive(Debug)]
pub struct DaemonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonClient {
    /// Connects to a `semred` server.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<DaemonClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(DaemonClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send(&mut self, request: &Request, payload: Option<&[u8]>) -> std::io::Result<()> {
        let mut line = request.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        if let Some(payload) = payload {
            self.writer.write_all(payload)?;
        }
        self.writer.flush()
    }

    /// Reads one `OK <status> …` line; `ERR` becomes an error.
    fn read_ok(&mut self) -> std::io::Result<(i32, Vec<String>)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(protocol_error("server closed the connection"));
        }
        let line = line.trim_end_matches('\n');
        let mut parts = line.split(' ');
        match parts.next() {
            Some("OK") => {}
            Some("ERR") => {
                let _status = parts.next();
                let message: Vec<&str> = parts.collect();
                return Err(std::io::Error::other(message.join(" ")));
            }
            _ => return Err(protocol_error(format!("malformed response {line:?}"))),
        }
        let status: i32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| protocol_error(format!("malformed response {line:?}")))?;
        Ok((status, parts.map(str::to_owned).collect()))
    }

    fn read_payload(&mut self, len: usize) -> std::io::Result<Vec<u8>> {
        if len > MAX_PAYLOAD {
            return Err(protocol_error(format!(
                "oversized response payload ({len})"
            )));
        }
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        Ok(payload)
    }

    /// Names this connection's tenant.
    ///
    /// # Errors
    ///
    /// Server-side rejections (bad name) and socket errors.
    pub fn tenant(&mut self, name: &str) -> std::io::Result<()> {
        self.send(
            &Request::Tenant {
                name: name.to_owned(),
            },
            None,
        )?;
        self.read_ok().map(|_| ())
    }

    /// Compiles (or re-uses) a pattern; returns its handle.
    ///
    /// # Errors
    ///
    /// Server-side rejections (bad spec, bad pattern) and socket errors.
    pub fn compile(&mut self, spec: &str, pattern: &str) -> std::io::Result<u64> {
        self.send(
            &Request::Compile {
                spec: spec.to_owned(),
                pattern: pattern.to_owned(),
            },
            None,
        )?;
        let (_, args) = self.read_ok()?;
        args.iter()
            .find_map(|arg| arg.strip_prefix("handle=")?.parse().ok())
            .ok_or_else(|| protocol_error("COMPILE response without a handle"))
    }

    /// Whole-payload membership: is `text ∈ ⟦r⟧`?
    ///
    /// # Errors
    ///
    /// Server-side rejections (unknown handle, budget) and socket errors.
    pub fn is_match(&mut self, handle: u64, text: &[u8]) -> std::io::Result<bool> {
        self.send(
            &Request::Match {
                handle,
                len: text.len(),
            },
            Some(text),
        )?;
        Ok(self.read_ok()?.0 == 0)
    }

    /// Leftmost-earliest span search over the payload.
    ///
    /// # Errors
    ///
    /// Server-side rejections and socket errors.
    pub fn find(&mut self, handle: u64, text: &[u8]) -> std::io::Result<Option<(usize, usize)>> {
        self.send(
            &Request::Find {
                handle,
                len: text.len(),
            },
            Some(text),
        )?;
        let (status, args) = self.read_ok()?;
        if status != 0 {
            return Ok(None);
        }
        let parse = |i: usize| args.get(i).and_then(|s| s.parse().ok());
        match (parse(0), parse(1)) {
            (Some(start), Some(end)) => Ok(Some((start, end))),
            _ => Err(protocol_error("FIND response without a span")),
        }
    }

    /// Per-line membership over the payload.
    ///
    /// # Errors
    ///
    /// Server-side rejections and socket errors.
    pub fn scan(&mut self, handle: u64, text: &[u8]) -> std::io::Result<ScanOutcome> {
        self.send(
            &Request::Scan {
                handle,
                len: text.len(),
            },
            Some(text),
        )?;
        let (status, args) = self.read_ok()?;
        let parse = |i: usize| args.get(i).and_then(|s: &String| s.parse::<u64>().ok());
        let (Some(lines), Some(matched), Some(len)) = (parse(0), parse(1), parse(2)) else {
            return Err(protocol_error("malformed SCAN response header"));
        };
        let payload = self.read_payload(len as usize)?;
        Ok(ScanOutcome {
            status,
            lines,
            matched,
            payload,
        })
    }

    /// Fetches the server's `STATS` text.
    ///
    /// # Errors
    ///
    /// Socket errors and malformed responses.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.send(&Request::Stats, None)?;
        let (_, args) = self.read_ok()?;
        let len: usize = args
            .first()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| protocol_error("malformed STATS response header"))?;
        let payload = self.read_payload(len)?;
        String::from_utf8(payload).map_err(|_| protocol_error("non-UTF-8 STATS payload"))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send(&Request::Ping, None)?;
        self.read_ok().map(|_| ())
    }

    /// Asks the server to stop.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown, None)?;
        self.read_ok().map(|_| ())
    }

    /// Closes the connection politely.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn quit(mut self) -> std::io::Result<()> {
        self.send(&Request::Quit, None)?;
        self.read_ok().map(|_| ())
    }
}
