//! `semred` — a long-running SemRE match daemon.
//!
//! The paper's cost model counts oracle invocations, and the in-process
//! query planes already minimize them *within* one run.  `semred` takes
//! the amortization to its limit: a resident TCP server that keeps
//! compiled patterns and — through the
//! [`PersistentAnswerStore`](semre::PersistentAnswerStore) — oracle
//! answers alive across client processes, runs, and restarts.  A question
//! any client has ever asked is answered from the store; only genuinely
//! novel questions reach a backend.
//!
//! # Protocol
//!
//! A line protocol over TCP (see [`proto`]): `COMPILE <spec> <pattern>`
//! returns a handle, and `MATCH` / `FIND` / `SCAN` run that handle over a
//! length-prefixed payload.  Responses carry grep-convention status codes
//! (`0` match, `1` no match, `2` error).  `TENANT` names the caller for
//! attribution and budgets, `STATS` exposes per-tenant counters and store
//! health, `SHUTDOWN` stops the server.
//!
//! ```text
//! → COMPILE sim-llm Subject: .*(?<Medicine name>: [a-z]+).*
//! ← OK 0 handle=1 cache=new
//! → MATCH 1 30
//! → Subject: buy xanax online now
//! ← OK 0
//! → SCAN 1 63
//! → Subject: buy xanax online now
//! → Subject: weekly sync minutes
//! ← OK 0 2 1 30
//! ← Subject: buy xanax online now
//! ```
//!
//! # Architecture
//!
//! * [`server`] — `TcpListener` + a **bounded** pool of `workers`
//!   threads, each serving one connection at a time (not
//!   thread-per-connection: further accepted connections queue in a
//!   rendezvous channel and then the listener backlog, so a connection
//!   flood cannot spawn unbounded threads).  An optional per-`SCAN`
//!   request timeout and mid-scan budget probes abort runaway requests
//!   at line boundaries with an `ERR`, keeping every worker reclaimable.
//! * [`cache`] — an LRU of compiled patterns keyed by
//!   `(OracleSpec, pattern)`, so repeated `COMPILE`s are free.
//! * [`tenant`] — per-`(tenant, spec)` [`SharedSession`](semre::SharedSession)s
//!   over one global persistent store: counters attribute work to
//!   tenants, answers amortize across everyone.
//! * [`client`] — a blocking client ([`DaemonClient`]) used by
//!   `grepo --daemon` and the smoke tests.
//!
//! Scans execute on the connection's worker thread with the batched
//! oracle plane; the pattern's oracle is a thread-local *router* that
//! forwards each question to the session of the tenant currently being
//! served (see [`tenant`]), which is what lets one compiled pattern be
//! shared by every tenant without mixing up their counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod tenant;

pub use client::{DaemonClient, ScanOutcome};
pub use proto::{Request, MAX_PAYLOAD};
pub use server::{Server, ServerConfig, ServerHandle};
