//! The `semred` wire protocol.
//!
//! One request per line, UTF-8, `\n`-terminated.  Commands that carry a
//! payload (`MATCH`, `FIND`, `SCAN`) state its byte length on the command
//! line and send the raw bytes immediately after the newline — no
//! escaping, no base64, so a scanned file travels verbatim.
//!
//! ```text
//! COMPILE <spec> <pattern>      compile; pattern runs to end of line
//! TENANT <name>                 name this connection's tenant
//! MATCH <handle> <nbytes>       whole-payload membership  (w ∈ ⟦r⟧?)
//! FIND <handle> <nbytes>        leftmost-earliest span search
//! SCAN <handle> <nbytes>        per-line membership over the payload
//! STATS                         server + per-tenant counters
//! PING                          liveness probe
//! SHUTDOWN                      stop the server
//! QUIT                          close this connection
//! ```
//!
//! Responses are `OK <status> …` with grep-convention status codes
//! (`0` match found, `1` no match, `2` error) or `ERR 2 <message>`.
//! `SCAN` and `STATS` responses carry their own length-prefixed payload:
//! `OK <status> <lines> <matched> <nbytes>\n<payload>`.
//!
//! The `<spec>` token is the canonical `OracleSpec` display form
//! (`sim-llm`, `always-true`, `always-false`, `set:FILE`); it must be
//! whitespace-free to survive tokenization (`OracleSpec::wire_token`).

use std::fmt;

/// Upper bound on any request payload (64 MiB) — a guard against a
/// malformed length prefix allocating unbounded memory, not a practical
/// scan limit (scans stream per connection, one payload at a time).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Upper bound on a tenant name.
pub const MAX_TENANT_LEN: usize = 64;

/// A parsed request line (payload bytes, if any, follow separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `COMPILE <spec> <pattern>`.
    Compile {
        /// The oracle spec token.
        spec: String,
        /// The SemRE pattern (runs to end of line, spaces included).
        pattern: String,
    },
    /// `TENANT <name>`.
    Tenant {
        /// The tenant name.
        name: String,
    },
    /// `MATCH <handle> <nbytes>`.
    Match {
        /// Pattern handle from `COMPILE`.
        handle: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// `FIND <handle> <nbytes>`.
    Find {
        /// Pattern handle from `COMPILE`.
        handle: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// `SCAN <handle> <nbytes>`.
    Scan {
        /// Pattern handle from `COMPILE`.
        handle: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// `STATS`.
    Stats,
    /// `PING`.
    Ping,
    /// `SHUTDOWN`.
    Shutdown,
    /// `QUIT`.
    Quit,
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Compile { spec, pattern } => write!(f, "COMPILE {spec} {pattern}"),
            Request::Tenant { name } => write!(f, "TENANT {name}"),
            Request::Match { handle, len } => write!(f, "MATCH {handle} {len}"),
            Request::Find { handle, len } => write!(f, "FIND {handle} {len}"),
            Request::Scan { handle, len } => write!(f, "SCAN {handle} {len}"),
            Request::Stats => f.write_str("STATS"),
            Request::Ping => f.write_str("PING"),
            Request::Shutdown => f.write_str("SHUTDOWN"),
            Request::Quit => f.write_str("QUIT"),
        }
    }
}

/// Whether `name` is acceptable as a tenant name: non-empty, at most
/// [`MAX_TENANT_LEN`] bytes, and built from `[A-Za-z0-9._-]` only.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn parse_handle_len(args: Option<&str>, verb: &str) -> Result<(u64, usize), String> {
    let args = args.ok_or_else(|| format!("{verb} needs <handle> <nbytes>"))?;
    let mut parts = args.split_ascii_whitespace();
    let (Some(handle), Some(len), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("{verb} needs exactly <handle> <nbytes>"));
    };
    let handle: u64 = handle
        .parse()
        .map_err(|_| format!("bad handle {handle:?}"))?;
    let len: usize = len.parse().map_err(|_| format!("bad length {len:?}"))?;
    if len > MAX_PAYLOAD {
        return Err(format!(
            "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
        ));
    }
    Ok((handle, len))
}

/// Parses one request line (without its terminator).
///
/// # Errors
///
/// A human-readable message, sent back verbatim as `ERR 2 <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let (verb, rest) = match line.split_once(' ') {
        Some((verb, rest)) => (verb, Some(rest)),
        None => (line, None),
    };
    match verb {
        "COMPILE" => {
            let rest = rest.ok_or("COMPILE needs <spec> <pattern>")?;
            let (spec, pattern) = rest
                .split_once(' ')
                .ok_or("COMPILE needs <spec> <pattern>")?;
            if spec.is_empty() || pattern.is_empty() {
                return Err("COMPILE needs <spec> <pattern>".to_owned());
            }
            Ok(Request::Compile {
                spec: spec.to_owned(),
                pattern: pattern.to_owned(),
            })
        }
        "TENANT" => {
            let name = rest.unwrap_or("").trim();
            if !valid_tenant(name) {
                return Err(format!(
                    "bad tenant name {name:?} (want 1-{MAX_TENANT_LEN} chars of [A-Za-z0-9._-])"
                ));
            }
            Ok(Request::Tenant {
                name: name.to_owned(),
            })
        }
        "MATCH" => {
            parse_handle_len(rest, "MATCH").map(|(handle, len)| Request::Match { handle, len })
        }
        "FIND" => parse_handle_len(rest, "FIND").map(|(handle, len)| Request::Find { handle, len }),
        "SCAN" => parse_handle_len(rest, "SCAN").map(|(handle, len)| Request::Scan { handle, len }),
        "STATS" if rest.is_none() => Ok(Request::Stats),
        "PING" if rest.is_none() => Ok(Request::Ping),
        "SHUTDOWN" if rest.is_none() => Ok(Request::Shutdown),
        "QUIT" if rest.is_none() => Ok(Request::Quit),
        "" => Err("empty request".to_owned()),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_round_trip() {
        for (line, request) in [
            (
                "COMPILE sim-llm Subject: .*(?<Medicine name>: [a-z]+).*",
                Request::Compile {
                    spec: "sim-llm".into(),
                    pattern: "Subject: .*(?<Medicine name>: [a-z]+).*".into(),
                },
            ),
            (
                "TENANT ci-bot.7",
                Request::Tenant {
                    name: "ci-bot.7".into(),
                },
            ),
            ("MATCH 3 17", Request::Match { handle: 3, len: 17 }),
            ("FIND 1 0", Request::Find { handle: 1, len: 0 }),
            (
                "SCAN 9 4096",
                Request::Scan {
                    handle: 9,
                    len: 4096,
                },
            ),
            ("STATS", Request::Stats),
            ("PING", Request::Ping),
            ("SHUTDOWN", Request::Shutdown),
            ("QUIT", Request::Quit),
        ] {
            assert_eq!(parse_request(line).unwrap(), request, "{line}");
            // Display is the canonical line form.
            assert_eq!(parse_request(&request.to_string()).unwrap(), request);
        }
        // CRLF tolerance.
        assert_eq!(parse_request("PING\r").unwrap(), Request::Ping);
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for line in [
            "",
            "BOGUS",
            "COMPILE",
            "COMPILE sim-llm",
            "COMPILE  leading-space-pattern",
            "MATCH",
            "MATCH 1",
            "MATCH one 2",
            "MATCH 1 two",
            "MATCH 1 2 3",
            "SCAN 1 999999999999999999999",
            "TENANT",
            "TENANT has space",
            "TENANT ",
            "STATS now",
            "SHUTDOWN please",
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(!err.is_empty(), "{line:?} should explain its rejection");
        }
        // The payload cap is enforced at parse time.
        let too_big = format!("SCAN 1 {}", MAX_PAYLOAD + 1);
        assert!(parse_request(&too_big).unwrap_err().contains("limit"));
        let at_cap = format!("SCAN 1 {MAX_PAYLOAD}");
        assert!(parse_request(&at_cap).is_ok());
    }

    #[test]
    fn tenant_name_policy() {
        assert!(valid_tenant("default"));
        assert!(valid_tenant("a"));
        assert!(valid_tenant("ci-bot_7.east"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant("uni\u{00e7}ode"));
        assert!(!valid_tenant(&"x".repeat(MAX_TENANT_LEN + 1)));
        assert!(valid_tenant(&"x".repeat(MAX_TENANT_LEN)));
    }
}
