//! End-to-end smoke tests for `semred`: golden byte-exact protocol
//! exchanges, the warm-restart dedupe win, budgets, and the real binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use semre_daemon::{DaemonClient, Server, ServerConfig};

const MEMBERSHIP: &str = "Subject: .*(?<Medicine name>: [a-z]+).*";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semred-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn(config: ServerConfig) -> semre_daemon::ServerHandle {
    Server::bind(config).unwrap().spawn().unwrap()
}

/// The protocol is byte-exact: a scripted session against a fresh server
/// must produce exactly these response bytes.
#[test]
fn golden_scripted_session_is_byte_exact() {
    let handle = spawn(ServerConfig::default());
    let addr = handle.addr;

    let mut stream = TcpStream::connect(addr).unwrap();
    let corpus = b"Subject: buy xanax online now\nSubject: weekly sync minutes\n";
    let mut script = Vec::new();
    script.extend_from_slice(b"PING\n");
    script.extend_from_slice(format!("COMPILE sim-llm {MEMBERSHIP}\n").as_bytes());
    script.extend_from_slice(format!("COMPILE sim-llm {MEMBERSHIP}\n").as_bytes());
    script.extend_from_slice(b"TENANT smoke\n");
    script.extend_from_slice(b"MATCH 1 29\nSubject: buy xanax online now");
    script.extend_from_slice(b"MATCH 1 28\nSubject: weekly sync minutes");
    script.extend_from_slice(b"FIND 1 35\n[fwd] Subject: buy xanax online now");
    script.extend_from_slice(format!("SCAN 1 {}\n", corpus.len()).as_bytes());
    script.extend_from_slice(corpus);
    script.extend_from_slice(b"BOGUS COMMAND\n");
    stream.write_all(&script).unwrap();

    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let expected = b"OK 0 pong\n\
                     OK 0 handle=1 cache=new\n\
                     OK 0 handle=1 cache=hit\n\
                     OK 0\n\
                     OK 0\n\
                     OK 1\n\
                     OK 0 6 24\n\
                     OK 0 2 1 30\n\
                     Subject: buy xanax online now\n\
                     ERR 2 unknown command \"BOGUS\"\n";
    assert_eq!(
        String::from_utf8_lossy(&response),
        String::from_utf8_lossy(expected)
    );

    let mut client = DaemonClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The tentpole acceptance: a warm restart over the same answer log
/// issues zero backend questions for previously-seen keys, and the
/// persisted hits are attributed separately from in-memory dedupe.
#[test]
fn warm_restart_issues_zero_backend_questions() {
    let dir = temp_dir("warm");
    let log = dir.join("answers.log");
    let _ = std::fs::remove_file(&log);
    let config = || ServerConfig {
        answer_log: Some(log.clone()),
        ..ServerConfig::default()
    };
    let corpus =
        b"Subject: buy xanax online now\nSubject: cheap tramadol here\nSubject: weekly sync\n";

    // Cold daemon: the corpus costs backend questions.
    let cold_scan;
    {
        let handle = spawn(config());
        let mut client = DaemonClient::connect(handle.addr).unwrap();
        client.tenant("ci").unwrap();
        let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();
        cold_scan = client.scan(pattern_handle, corpus).unwrap();
        assert_eq!(cold_scan.lines, 3);
        let stats = client.stats().unwrap();
        let ci = stats_line(&stats, "tenant ci:");
        assert!(
            field(&ci, "backend_keys") > 0,
            "cold run reaches the backend: {ci}"
        );
        assert_eq!(
            field(&ci, "persisted_hits"),
            0,
            "nothing persisted yet: {ci}"
        );
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    // Warm daemon, fresh process state, same log: same answers, zero
    // backend questions, all hits attributed to the persistent store.
    {
        let handle = spawn(config());
        let mut client = DaemonClient::connect(handle.addr).unwrap();
        client.tenant("ci").unwrap();
        let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();
        let warm_scan = client.scan(pattern_handle, corpus).unwrap();
        assert_eq!(
            warm_scan.payload, cold_scan.payload,
            "verdicts must not change"
        );
        assert_eq!(warm_scan.matched, cold_scan.matched);
        let stats = client.stats().unwrap();
        let store = stats_line(&stats, "store:");
        assert!(field(&store, "replayed") > 0, "log was replayed: {store}");
        let ci = stats_line(&stats, "tenant ci:");
        assert_eq!(
            field(&ci, "backend_keys"),
            0,
            "warm restart must issue zero backend questions: {ci}"
        );
        assert!(
            field(&ci, "persisted_hits") > 0,
            "hits come from disk: {ci}"
        );
        // A second tenant rides the same store without touching the
        // backend either.
        client.tenant("other").unwrap();
        let again = client.scan(pattern_handle, corpus).unwrap();
        assert_eq!(again.payload, cold_scan.payload);
        let stats = client.stats().unwrap();
        let other = stats_line(&stats, "tenant other:");
        assert_eq!(field(&other, "backend_keys"), 0, "{other}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budgets refuse requests once a tenant's backend questions are spent,
/// without affecting other tenants.
#[test]
fn budget_exhaustion_is_per_tenant() {
    let handle = spawn(ServerConfig {
        budget: Some(1),
        ..ServerConfig::default()
    });
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    client.tenant("spender").unwrap();
    let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();
    // First request may run (and overruns the budget of 1).
    client
        .scan(pattern_handle, b"Subject: buy xanax online now\n")
        .unwrap();
    // The next request is refused.
    let err = client
        .scan(pattern_handle, b"Subject: cheap tramadol here\n")
        .unwrap_err();
    assert!(err.to_string().contains("budget exhausted"), "{err}");
    // A different tenant still runs (its own budget).
    client.tenant("frugal").unwrap();
    client
        .scan(pattern_handle, b"Subject: weekly sync\n")
        .unwrap();
    let stats = client.stats().unwrap();
    assert!(field(&stats_line(&stats, "tenant spender:"), "budget_denied") >= 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Unknown and evicted handles are protocol errors, not crashes; the
/// connection stays usable.
#[test]
fn unknown_handles_and_bad_specs_are_clean_errors() {
    let handle = spawn(ServerConfig {
        pattern_capacity: 1,
        ..ServerConfig::default()
    });
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    let err = client.is_match(99, b"x").unwrap_err();
    assert!(err.to_string().contains("unknown handle"), "{err}");
    let err = client.compile("no-such-oracle", "abc").unwrap_err();
    assert!(err.to_string().contains("unknown oracle kind"), "{err}");
    let err = client.compile("sim-llm", "(").unwrap_err();
    assert!(!err.to_string().is_empty());
    // Capacity 1: compiling a second pattern evicts the first.
    let first = client.compile("always-true", "abc").unwrap();
    let second = client.compile("always-true", "xyz").unwrap();
    assert_ne!(first, second);
    let err = client.is_match(first, b"abc").unwrap_err();
    assert!(err.to_string().contains("unknown handle"), "{err}");
    assert!(client.is_match(second, b"xyz").unwrap());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The shipped binary: start on port 0, discover the port from stdout,
/// drive it with the client modes, shut it down.
#[test]
fn semred_binary_round_trip() {
    let dir = temp_dir("binary");
    let log = dir.join("answers.log");
    let _ = std::fs::remove_file(&log);
    let mut daemon = std::process::Command::new(env!("CARGO_BIN_EXE_semred"))
        .args(["--addr", "127.0.0.1:0", "--answer-log"])
        .arg(&log)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = daemon.stdout.take().unwrap();
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("semred listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let mut client = DaemonClient::connect(&addr).unwrap();
    client.ping().unwrap();
    let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();
    let scan = client
        .scan(pattern_handle, b"Subject: buy xanax online now\n")
        .unwrap();
    assert_eq!(scan.matched, 1);
    drop(client);

    // The binary's own client modes.
    let stats = std::process::Command::new(env!("CARGO_BIN_EXE_semred"))
        .args(["--stats", &addr])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let stats_text = String::from_utf8(stats.stdout).unwrap();
    assert!(stats_text.contains("store: entries="), "{stats_text}");
    assert!(stats_text.contains("tenant default:"), "{stats_text}");

    let shutdown = std::process::Command::new(env!("CARGO_BIN_EXE_semred"))
        .args(["--shutdown", &addr])
        .status()
        .unwrap();
    assert!(shutdown.success());
    let status = daemon.wait().unwrap();
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pulls the line starting with `prefix` out of a STATS payload.
fn stats_line(stats: &str, prefix: &str) -> String {
    stats
        .lines()
        .find(|line| line.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix:?} line in {stats:?}"))
        .to_owned()
}

/// Extracts `name=<u64>` from a STATS line.
fn field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|part| part.strip_prefix(&format!("{name}="))?.parse().ok())
        .unwrap_or_else(|| panic!("no {name}= field in {line:?}"))
}
