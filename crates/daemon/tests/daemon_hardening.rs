//! Daemon hardening: request deadlines, mid-scan budget enforcement,
//! fault-injecting backends over the wire, and a concurrent-client
//! stress test over one shared answer log.
//!
//! The common thread: a misbehaving request (slow, over budget, or with
//! a failing oracle) must cost *one* `ERR` response — never a wedged
//! worker, a poisoned connection, or a corrupted counter.

use std::io::BufRead;
use std::io::BufReader;
use std::path::PathBuf;
use std::time::Duration;

use semre_daemon::{DaemonClient, Server, ServerConfig};

const MEMBERSHIP: &str = "Subject: .*(?<Medicine name>: [a-z]+).*";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semred-harden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn(config: ServerConfig) -> semre_daemon::ServerHandle {
    Server::bind(config).unwrap().spawn().unwrap()
}

/// Pulls the line starting with `prefix` out of a STATS payload.
fn stats_line(stats: &str, prefix: &str) -> String {
    stats
        .lines()
        .find(|line| line.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix:?} line in {stats:?}"))
        .to_owned()
}

/// Extracts `name=<u64>` from a STATS line.
fn field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|part| part.strip_prefix(&format!("{name}="))?.parse().ok())
        .unwrap_or_else(|| panic!("no {name}= field in {line:?}"))
}

/// An expired deadline aborts a multi-line scan at the first line
/// boundary after the first line — and only multi-line scans: the first
/// line rides the request-start admission, so a single-line request
/// still completes, and the worker stays reclaimable either way.
#[test]
fn request_timeout_aborts_runaway_scans_at_a_line_boundary() {
    let handle = spawn(ServerConfig {
        request_timeout: Some(Duration::from_nanos(1)),
        ..ServerConfig::default()
    });
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();

    let err = client
        .scan(
            pattern_handle,
            b"Subject: buy xanax online now\nSubject: cheap tramadol here\nSubject: weekly sync\n",
        )
        .unwrap_err()
        .to_string();
    assert!(err.contains("scan aborted after"), "{err}");
    assert!(err.contains("deadline exceeded"), "{err}");

    // The connection and worker survive: a single-line scan (admitted at
    // request start) and a MATCH both still run.
    let scan = client
        .scan(pattern_handle, b"Subject: buy xanax online now\n")
        .unwrap();
    assert_eq!((scan.lines, scan.matched), (1, 1));
    assert!(client
        .is_match(pattern_handle, b"Subject: buy xanax online now")
        .unwrap());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A scan that overruns its tenant's budget mid-flight is aborted at the
/// next line boundary and counted as exactly one denial — enforcement no
/// longer waits for the *next* request to notice.
#[test]
fn budget_overrun_aborts_mid_scan_and_counts_one_denial() {
    let handle = spawn(ServerConfig {
        budget: Some(1),
        ..ServerConfig::default()
    });
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    client.tenant("greedy").unwrap();
    let pattern_handle = client.compile("sim-llm", MEMBERSHIP).unwrap();

    let err = client
        .scan(
            pattern_handle,
            b"Subject: buy xanax online now\nSubject: cheap tramadol here\nSubject: weekly sync\n",
        )
        .unwrap_err()
        .to_string();
    assert!(err.contains("scan aborted after"), "{err}");
    assert!(err.contains("budget exhausted"), "{err}");
    assert!(err.contains("greedy"), "reason names the tenant: {err}");

    let stats = client.stats().unwrap();
    assert_eq!(
        field(&stats_line(&stats, "tenant greedy:"), "budget_denied"),
        1,
        "one abort, one denial: {stats}"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A `flaky:` backend compiled over the wire errors cleanly per request
/// — with line attribution for scans — and never poisons the worker
/// thread for later requests.
#[test]
fn flaky_backends_over_the_wire_error_cleanly_and_recover() {
    let handle = spawn(ServerConfig::default());
    let mut client = DaemonClient::connect(handle.addr).unwrap();

    // Every backend call fails and retries exhaust: each request costs
    // one ERR.
    let broken = client.compile("flaky:100:1:2:sim-llm", MEMBERSHIP).unwrap();
    let err = client
        .is_match(broken, b"Subject: buy xanax online now")
        .unwrap_err()
        .to_string();
    assert!(err.contains("oracle"), "{err}");
    let err = client
        .scan(
            broken,
            b"Subject: buy xanax online now\nSubject: weekly sync\n",
        )
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("line "),
        "scan faults carry line attribution: {err}"
    );

    // The same connection (same worker thread) is healthy afterwards:
    // the fault does not stick to the thread.
    let healthy = client.compile("sim-llm", MEMBERSHIP).unwrap();
    assert!(client
        .is_match(healthy, b"Subject: buy xanax online now")
        .unwrap());

    // A flaky spec whose faults the retry layer fully absorbs behaves
    // exactly like the healthy backend.
    let absorbed = client.compile("flaky:30:7:8:sim-llm", MEMBERSHIP).unwrap();
    let corpus = b"Subject: buy xanax online now\nSubject: weekly sync minutes\n";
    let flaky_scan = client.scan(absorbed, corpus).unwrap();
    let healthy_scan = client.scan(healthy, corpus).unwrap();
    assert_eq!(flaky_scan.payload, healthy_scan.payload);
    assert_eq!(flaky_scan.matched, healthy_scan.matched);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite stress test: N concurrent clients on distinct tenants over
/// one answer log.  Counters must stay coherent (per-tenant backend
/// spend sums to exactly the store's appends) and no append may be lost
/// (a warm restart re-answers every tenant's scan for zero backend
/// questions).
#[test]
fn concurrent_tenants_keep_counters_coherent_and_lose_no_appends() {
    const CLIENTS: usize = 6;
    const SCANS_PER_CLIENT: usize = 3;
    // Oracle questions are capture-group substrings starting at the
    // colon, so disjoint per-tenant key sets need the tenant right after
    // the colon, with distinct first letters.
    const TENANTS: [&str; CLIENTS] = ["alpha", "bravo", "crane", "delta", "echo", "fox"];
    const STRESS_PATTERN: &str = "Subject: .*(?<Medicine name>: .+).*";

    let dir = temp_dir("stress");
    let log = dir.join("answers.log");
    let _ = std::fs::remove_file(&log);
    let config = || ServerConfig {
        answer_log: Some(log.clone()),
        workers: 4, // fewer workers than clients: exercise the queue
        ..ServerConfig::default()
    };

    let payload_for = |tenant: &str| -> Vec<u8> {
        format!(
            "Subject: {tenant} buys xanax online now\n\
             Subject: {tenant} wants cheap tramadol\n\
             Subject: {tenant} weekly sync minutes\n\
             {tenant} line without a subject\n"
        )
        .into_bytes()
    };

    let handle = spawn(config());
    let addr = handle.addr;

    // Compile once up front so the concurrent COMPILEs below are cache
    // hits and the build-time probes are attributed to one tenant.
    let mut warmup = DaemonClient::connect(addr).unwrap();
    warmup.tenant("warmup").unwrap();
    let pattern_handle = warmup.compile("sim-llm", STRESS_PATTERN).unwrap();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let tenant = TENANTS[i].to_owned();
                let payload = payload_for(&tenant);
                let mut client = DaemonClient::connect(addr).unwrap();
                client.tenant(&tenant).unwrap();
                let handle = client.compile("sim-llm", STRESS_PATTERN).unwrap();
                let first = client.scan(handle, &payload).unwrap();
                assert_eq!(first.lines, 4, "{tenant}");
                assert!(first.matched >= 1, "{tenant}");
                for _ in 1..SCANS_PER_CLIENT {
                    let again = client.scan(handle, &payload).unwrap();
                    assert_eq!(again.payload, first.payload, "{tenant}: verdicts drifted");
                    assert_eq!(again.matched, first.matched, "{tenant}");
                }
                (tenant, first.payload, first.matched)
            })
        })
        .collect();
    let results: Vec<(String, Vec<u8>, u64)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(pattern_handle, 1, "warmup compiled the only pattern");

    // Coherence: every appended record traces back to a backend answer.
    // Two scan workers racing on the same fresh key may both reach the
    // backend (SharedSession resolves misses outside the stripe locks),
    // so `backend_keys` can overcount appends slightly — but it can
    // never undercount: an append without a backend answer would mean
    // the store invented data.
    let stats = warmup.stats().unwrap();
    let mut backend_total = 0;
    for (tenant, ..) in &results {
        let row = stats_line(&stats, &format!("tenant {tenant}:"));
        assert!(field(&row, "backend_keys") > 0, "{row}");
        assert!(
            field(&row, "deduped") > 0,
            "repeated scans dedupe in memory: {row}"
        );
        backend_total += field(&row, "backend_keys");
    }
    backend_total += field(&stats_line(&stats, "tenant warmup:"), "backend_keys");
    let store = stats_line(&stats, "store:");
    assert!(
        backend_total >= field(&store, "appended"),
        "an append without a backend answer: {stats}"
    );
    assert_eq!(
        field(&store, "entries"),
        field(&store, "appended"),
        "concurrent tenants never append a key twice: {store}"
    );
    assert_eq!(field(&store, "write_errors"), 0, "{store}");
    warmup.shutdown().unwrap();
    handle.join().unwrap();

    // Zero lost appends: a warm restart answers every tenant's scan from
    // the log alone.
    let handle = spawn(config());
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    for (tenant, expected_payload, expected_matched) in &results {
        client.tenant(tenant).unwrap();
        let handle = client.compile("sim-llm", STRESS_PATTERN).unwrap();
        let warm = client.scan(handle, &payload_for(tenant)).unwrap();
        assert_eq!(&warm.payload, expected_payload, "{tenant}");
        assert_eq!(warm.matched, *expected_matched, "{tenant}");
    }
    let stats = client.stats().unwrap();
    for (tenant, ..) in &results {
        let row = stats_line(&stats, &format!("tenant {tenant}:"));
        assert_eq!(
            field(&row, "backend_keys"),
            0,
            "a lost append would force a backend question: {row}"
        );
        assert!(field(&row, "persisted_hits") > 0, "{row}");
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `tiered:` spec over the wire routes cheap answers through the
/// registry tiers, matches the flat backend byte-for-byte, and surfaces
/// per-tier counters on a `STATS` `tiers:` line.
#[test]
fn tiered_specs_route_over_the_wire_and_surface_tier_stats() {
    let handle = spawn(ServerConfig::default());
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    let corpus: &[u8] =
        b"Subject: buy xanax online now\nSubject: cheap tramadol here\nSubject: weekly sync\n";

    let flat = client.compile("sim-llm", MEMBERSHIP).unwrap();
    let flat_scan = client.scan(flat, corpus).unwrap();

    let tiered = client
        .compile("tiered:cache+screen+dict:sim-llm", MEMBERSHIP)
        .unwrap();
    let tiered_scan = client.scan(tiered, corpus).unwrap();
    assert_eq!(tiered_scan.payload, flat_scan.payload, "verdicts identical");
    assert_eq!(tiered_scan.matched, flat_scan.matched);

    let stats = client.stats().unwrap();
    let tiers = stats_line(&stats, "tiers:");
    assert_eq!(
        field(&tiers, "authority_keys"),
        0,
        "the dict tier answers every Medicine-name key: {tiers}"
    );
    assert!(
        field(&tiers, "dict_hits") + field(&tiers, "screen_hits") + field(&tiers, "cache_hits") > 0,
        "{tiers}"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Circuit breakers are keyed by *backend identity*, not by compiled
/// spec: when tenant A's requests trip the breaker on a failing backend,
/// tenant B's very first request over the same backend fast-fails
/// instead of burning its own failure budget against a backend already
/// known to be down.
#[test]
fn breaker_trips_per_backend_identity_across_tenants() {
    let handle = spawn(ServerConfig::default());
    let mut alice = DaemonClient::connect(handle.addr).unwrap();
    alice.tenant("alice").unwrap();
    // Threshold 1, long cooldown, over a backend that always fails with
    // a single attempt: the first real call trips the breaker for the
    // rest of the test.  The flaky seed 91 keeps this backend identity
    // distinct from every other test in this binary — the breaker
    // registry is process-wide by design.
    const BREAKER_SPEC: &str = "breaker:1:100000:flaky:100:91:1:sim-llm";
    let broken = alice.compile(BREAKER_SPEC, MEMBERSHIP).unwrap();
    let err = alice
        .is_match(broken, b"Subject: buy xanax online now")
        .unwrap_err()
        .to_string();
    assert!(err.contains("oracle"), "{err}");

    // Tenant B gets its own session (and its own RetryOracle instance)
    // for the same spec — but the breaker state is shared per backend
    // identity, so its first request fails fast.
    let mut bob = DaemonClient::connect(handle.addr).unwrap();
    bob.tenant("bob").unwrap();
    let same = bob.compile(BREAKER_SPEC, MEMBERSHIP).unwrap();
    assert_eq!(same, broken, "pattern cache shared across tenants");
    let err = bob
        .is_match(same, b"Subject: buy xanax online now")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("circuit breaker"),
        "tenant B must hit the shared breaker, not retry the backend: {err}"
    );

    // Fast-fail placeholders are degraded answers: they ride the fault
    // sink, so neither tenant's session may memoize them as facts.
    let stats = bob.stats().unwrap();
    assert_eq!(
        field(&stats_line(&stats, "tenant bob:"), "entries"),
        0,
        "fault-tainted placeholders must never be memoized: {stats}"
    );
    // Close bob's connection before shutdown, or the drain would wait on
    // the worker still serving it.
    drop(bob);
    alice.shutdown().unwrap();
    handle.join().unwrap();
}

/// Connection limits refuse with a final `ERR` line and a clean close —
/// a protocol-level guarantee: the limited client can always parse the
/// refusal and then reads EOF, never a hang or a reset mid-line.
#[test]
fn connection_limits_close_cleanly_with_an_err_line() {
    use std::io::{Read, Write};

    // Request-count limit: the third request on one connection is
    // refused.
    let handle = spawn(ServerConfig {
        max_requests_per_conn: Some(2),
        ..ServerConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(handle.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"PING\nPING\nPING\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    for _ in 0..2 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "OK 0 pong\n");
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR 2 connection limit:"),
        "refusal is a parseable ERR line: {line:?}"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "clean EOF after the refusal: {rest:?}");
    drop((reader, stream));
    // A fresh connection starts a fresh allowance.
    let mut client = DaemonClient::connect(handle.addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Byte limit: an oversized payload is refused *before* it is read,
    // with the same ERR-then-EOF shape.  The limit leaves room for the
    // setup connection's COMPILE and SHUTDOWN lines but not for the
    // 1000-byte MATCH payload below.
    let handle = spawn(ServerConfig {
        max_bytes_per_conn: Some(200),
        ..ServerConfig::default()
    });
    let mut setup = DaemonClient::connect(handle.addr).unwrap();
    let pattern_handle = setup.compile("sim-llm", MEMBERSHIP).unwrap();
    let mut stream = std::net::TcpStream::connect(handle.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("MATCH {pattern_handle} 1000\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR 2 connection limit:"),
        "oversized payload refused up front: {line:?}"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "clean EOF after the refusal: {rest:?}");
    drop((reader, stream));
    setup.shutdown().unwrap();
    handle.join().unwrap();
}

/// The shipped binary accepts the hardening flags.
#[test]
fn semred_binary_accepts_hardening_flags() {
    let dir = temp_dir("flags");
    let log = dir.join("answers.log");
    let _ = std::fs::remove_file(&log);
    let mut daemon = std::process::Command::new(env!("CARGO_BIN_EXE_semred"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--request-timeout",
            "30",
            "--max-log-bytes",
            "1048576",
            "--answer-log",
        ])
        .arg(&log)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = daemon.stdout.take().unwrap();
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("semred listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let mut client = DaemonClient::connect(&addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    assert!(daemon.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}
