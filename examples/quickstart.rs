//! Quick start: parse a semantic regular expression, attach an oracle, and
//! test a few lines for membership.
//!
//! Run with `cargo run --example quickstart`.

use semre::{Instrumented, Matcher, SetOracle, SimLlmOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A SemRE with an LLM-style oracle -----------------------------
    // Example 2.8 of the paper: subject lines advertising medicines, where
    // the medicine name must appear as a whole word.
    let spam = semre::parse(r"Subject: .* (?<Medicine name>: [a-zA-Z]+) .*")?;
    println!("pattern      : {spam}");
    println!("skeleton     : {}", semre::skeleton(&spam));
    println!("|r|          : {}", spam.size());
    println!("nested       : {}", spam.has_nested_queries());

    // The simulated LLM answers lexicon questions deterministically; the
    // Instrumented wrapper counts calls so we can see how sparingly the
    // matcher uses the oracle.
    let oracle = Instrumented::new(SimLlmOracle::new());
    let matcher = Matcher::new(spam, oracle);

    let lines: &[&str] = &[
        "Subject: buy cheap tramadol online now",
        "Subject: agenda for the quarterly review",
        "Re: buy cheap tramadol online now",
        "Subject: weight loss miracle ambien offer",
    ];
    println!("\nscanning {} lines:", lines.len());
    for line in lines {
        let verdict = if matcher.is_match(line.as_bytes()) {
            "MATCH "
        } else {
            "      "
        };
        println!("  {verdict} {line}");
    }
    let stats = matcher.oracle().stats();
    println!(
        "\noracle usage : {} calls, {} bytes submitted, {} positive answers",
        stats.calls, stats.query_bytes, stats.positive
    );

    // --- 2. A database-backed oracle --------------------------------------
    // Oracles need not be LLMs (Note 2.6): here the "Eastern European city"
    // category is a plain set lookup.
    let mut cities = SetOracle::new();
    cities.insert_all(
        "Eastern European city",
        ["Warsaw", "Prague", "Budapest", "Kyiv"],
    );
    let travel = semre::parse(r"travel to (?<Eastern European city>: [A-Za-z]+)")?;
    let travel_matcher = Matcher::new(travel, cities);
    for line in ["travel to Prague", "travel to Lisbon"] {
        println!(
            "{:<18} -> {}",
            line,
            if travel_matcher.is_match(line.as_bytes()) {
                "match"
            } else {
                "no match"
            }
        );
    }
    Ok(())
}
