//! Quick start: compile a semantic regular expression into a [`SemRegex`]
//! handle, test lines for membership, and search lines for matching spans —
//! entirely through the `semre` facade crate.
//!
//! Run with `cargo run --example quickstart`.

use semre::{Instrumented, SemRegex, SemRegexBuilder, SetOracle, SimLlmOracle};

fn main() -> Result<(), semre::Error> {
    // --- 1. A SemRE with an LLM-style oracle -----------------------------
    // Example 2.8 of the paper: subject lines advertising medicines, where
    // the medicine name must appear as a whole word.  The simulated LLM
    // answers lexicon questions deterministically; the Instrumented wrapper
    // counts calls so we can see how sparingly the matcher uses the oracle.
    let oracle = std::sync::Arc::new(Instrumented::new(SimLlmOracle::new()));
    let spam = SemRegex::new_shared(
        r"Subject: .* (?<Medicine name>: [a-zA-Z]+) .*",
        oracle.clone(),
    )?;
    println!("pattern      : {spam}");
    println!("skeleton     : {}", semre::skeleton(spam.semre()));
    println!("|r|          : {}", spam.semre().size());
    println!("algorithm    : {}", spam.algorithm());

    let lines: &[&str] = &[
        "Subject: buy cheap tramadol online now",
        "Subject: agenda for the quarterly review",
        "Re: buy cheap tramadol online now",
        "Subject: weight loss miracle ambien offer",
    ];
    println!("\nscanning {} lines (whole-line membership):", lines.len());
    for line in lines {
        let verdict = if spam.is_match(line.as_bytes()) {
            "MATCH "
        } else {
            "      "
        };
        println!("  {verdict} {line}");
    }
    let stats = oracle.stats();
    println!(
        "\noracle usage : {} calls, {} bytes submitted, {} positive answers",
        stats.calls, stats.query_bytes, stats.positive
    );

    // --- 2. Span search ---------------------------------------------------
    // `find` / `find_iter` locate the pattern *inside* a noisy line
    // (leftmost-earliest spans), like a classical regex engine.
    let meds = SemRegex::new(r"(?<Medicine name>: [a-z]+)", SimLlmOracle::new())?;
    let noisy = b"order: 2x tramadol, 1x ambien (refill) -- thanks!";
    println!("\nspans of {:?} in a noisy line:", meds.pattern());
    for m in meds.find_iter(noisy) {
        println!(
            "  [{:>2}..{:>2}] {}",
            m.start(),
            m.end(),
            m.as_str().unwrap_or("<non-utf8>")
        );
    }

    // --- 3. A database-backed oracle and a custom configuration ----------
    // Oracles need not be LLMs (Note 2.6): here the "Eastern European city"
    // category is a plain set lookup, and the builder selects the paper
    // prototype's per-call oracle plane.
    let mut cities = SetOracle::new();
    cities.insert_all(
        "Eastern European city",
        ["Warsaw", "Prague", "Budapest", "Kyiv"],
    );
    let travel = SemRegexBuilder::new()
        .per_call()
        .build(r"travel to (?<Eastern European city>: [A-Za-z]+)", cities)?;
    println!();
    for line in ["travel to Prague", "travel to Lisbon"] {
        println!(
            "{:<18} -> {}",
            line,
            if travel.is_match(line.as_bytes()) {
                "match"
            } else {
                "no match"
            }
        );
    }
    Ok(())
}
