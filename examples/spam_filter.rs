//! A multi-rule spam filter over a synthetic e-mail corpus, comparing the
//! query-graph matcher with the dynamic-programming baseline (the Section 5
//! evaluation in miniature).
//!
//! Four of the paper's benchmark SemREs are applied to every line of a
//! generated spam corpus: pharmaceutical subjects (`spam,1`), dead sender
//! domains (`edom`), phishing URLs (`wdom,1`), and foreign IP addresses
//! (`ip`).  Each rule is compiled once into a [`semre::SemRegex`] handle —
//! the baseline via `SemRegexBuilder::dp_baseline` — and the example
//! reports how many lines were flagged and how the two algorithms compare
//! in time and oracle calls.
//!
//! Run with `cargo run --release --example spam_filter`.

use std::sync::Arc;
use std::time::Instant;

use semre::workloads::Workbench;
use semre::{Instrumented, SemRegexBuilder};

fn main() -> Result<(), semre::Error> {
    let workbench = Workbench::generate(99, 2000, 0);
    // Keep the baseline affordable: the DP matcher is cubic in line length.
    let corpus = workbench.spam().truncated_to(200);
    println!("scanning {} spam lines (≤ 200 chars)\n", corpus.len());
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>12} {:>12} {:>9}",
        "rule", "flagged", "SNFA ms/line", "DP ms/line", "SNFA calls", "DP calls", "speedup"
    );

    for rule in ["spam,1", "edom", "wdom,1", "ip"] {
        let spec = workbench.benchmark(rule).expect("known benchmark");

        let snfa_oracle = Arc::new(Instrumented::new(spec.oracle.clone()));
        let snfa =
            SemRegexBuilder::new().build_semre_shared(spec.semre.clone(), snfa_oracle.clone())?;
        let started = Instant::now();
        let flagged = corpus
            .lines()
            .iter()
            .filter(|l| snfa.is_match(l.as_bytes()))
            .count();
        let snfa_time = started.elapsed();

        let dp_oracle = Arc::new(Instrumented::new(spec.oracle.clone()));
        let dp = SemRegexBuilder::new()
            .dp_baseline(true)
            .build_semre_shared(spec.semre.clone(), dp_oracle.clone())?;
        let started = Instant::now();
        let dp_flagged = corpus
            .lines()
            .iter()
            .filter(|l| dp.is_match(l.as_bytes()))
            .count();
        let dp_time = started.elapsed();

        assert_eq!(flagged, dp_flagged, "the two algorithms must agree");
        let per_line = |d: std::time::Duration| d.as_secs_f64() * 1e3 / corpus.len() as f64;
        println!(
            "{:<8} {:>8} {:>14.4} {:>14.4} {:>12.2} {:>12.2} {:>8.1}x",
            rule,
            flagged,
            per_line(snfa_time),
            per_line(dp_time),
            snfa_oracle.stats().calls as f64 / corpus.len() as f64,
            dp_oracle.stats().calls as f64 / corpus.len() as f64,
            dp_time.as_secs_f64() / snfa_time.as_secs_f64().max(f64::EPSILON),
        );
    }
    println!("\n(absolute numbers vary by machine; the SNFA matcher should win on every rule)");
    Ok(())
}
