//! Triangle detection through SemRE matching (Section 4.2 of the paper).
//!
//! Theorem 4.5 reduces triangle finding to membership testing for a nested
//! SemRE: a graph `G` is encoded as the string `#11#22…#nn`, the adjacency
//! relation becomes an oracle, and `G` has a triangle exactly when the
//! string matches `r_Δ`.  This example runs the reduction on random graphs
//! of growing size and cross-checks it against a direct cubic detector —
//! illustrating both the expressiveness of nested queries and why they are
//! the expensive case of the matching algorithm.
//!
//! Run with `cargo run --release --example triangle_finding`.

use std::time::Instant;

use semre::workloads::triangle::{has_triangle_via_semre, Graph};

fn main() {
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>16} {:>16}",
        "vertices", "edges", "triangle?", "agreement", "via SemRE (ms)", "direct (µs)"
    );
    for n in [6usize, 10, 14, 18, 24, 30] {
        let graph = Graph::random(n, 0.12, 0xC0FFEE + n as u64);

        let started = Instant::now();
        let direct = graph.has_triangle_direct();
        let direct_time = started.elapsed();

        let started = Instant::now();
        let via_semre = has_triangle_via_semre(&graph);
        let semre_time = started.elapsed();

        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>16.3} {:>16.2}",
            n,
            graph.num_edges(),
            direct,
            if direct == via_semre {
                "ok"
            } else {
                "MISMATCH"
            },
            semre_time.as_secs_f64() * 1e3,
            direct_time.as_secs_f64() * 1e6,
        );
        assert_eq!(direct, via_semre);
    }
    println!("\nThe SemRE route is far slower — as Theorem 4.5 predicts, beating");
    println!("cubic time here would yield a fast combinatorial triangle algorithm.");
}
