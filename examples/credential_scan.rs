//! Credential and stale-path scanning over a Java code base (Examples 2.3
//! and 2.5 of the paper, the `pass` and `file` benchmarks).
//!
//! The example generates a synthetic Java corpus, then scans it with two
//! SemREs — one flagging string literals that look like hard-coded secrets
//! (LLM-style oracle) and one flagging references to file paths that no
//! longer exist (file-system oracle).  Each rule is a [`semre::SemRegex`]
//! handle driving the `semre-grep` engine; besides the flagged lines the
//! example uses span search (`find`) to point at *where* in the line the
//! rule fired.
//!
//! Run with `cargo run --release --example credential_scan`.

use std::sync::Arc;

use semre::workloads::Workbench;
use semre::{Instrumented, SemRegexBuilder};
use semre_grep::{scan, ScanOptions};

fn main() -> Result<(), semre::Error> {
    let workbench = Workbench::generate(2025, 0, 1500);
    let corpus = workbench.java();
    println!(
        "scanning {} lines of generated Java ({} bytes)\n",
        corpus.len(),
        corpus.total_bytes()
    );

    for bench in ["pass", "file"] {
        let spec = workbench.benchmark(bench).expect("known benchmark");
        let oracle = Arc::new(Instrumented::with_latency(
            spec.oracle.clone(),
            spec.latency,
        ));
        let re = SemRegexBuilder::new().build_semre_shared(spec.semre.clone(), oracle.clone())?;
        let report = scan(
            &re,
            corpus.lines(),
            || oracle.stats(),
            ScanOptions::unlimited(),
        );

        println!("== rule `{bench}` ({}) ==", spec.oracle_kind);
        println!("   pattern size |r| = {}", spec.semre.size());
        println!(
            "   {} of {} lines flagged, {:.3} ms/line, {:.2} oracle calls/line, {:.1} query chars/line",
            report.matched_lines(),
            report.lines(),
            report.rt_total_ms(),
            report.oracle_calls_per_line(),
            report.query_chars_per_line()
        );
        println!("   first flagged lines (with the matched span):");
        for record in report.records.iter().filter(|r| r.matched).take(5) {
            let line = corpus.lines()[record.index].trim();
            match re.find(line.as_bytes()) {
                Some(m) => println!("     [{}..{}] {}", m.start(), m.end(), line),
                None => println!("     {line}"),
            }
        }
        println!();
    }
    Ok(())
}
