//! Streaming (chunked I/O) scanning: decide membership line by line
//! without ever materializing the whole input.
//!
//! [`LineChunks`] reads any [`Read`] source in fixed-size chunks and
//! reassembles complete lines across chunk boundaries: a line that
//! straddles two reads is carried over, a line longer than the chunk size
//! grows the carry buffer until its newline arrives, and a final line
//! without a trailing newline is still delivered.  Line splitting matches
//! `str::lines` — terminators are `\n` with an optional preceding `\r`,
//! both stripped — so verdicts and printed output are byte-identical to
//! an in-memory scan of the same text.
//!
//! [`SemRegex::scan_reader`] builds on it: an iterator of per-line
//! [`LineVerdict`]s whose peak memory is bounded by the chunk size plus
//! the longest line, independent of the input length.  The heavier
//! streaming machinery (parallel chunk scanning, aggregate reports, span
//! mode) lives in `semre_grep::stream`, which reuses [`LineChunks`].
//!
//! # Examples
//!
//! ```
//! use semre::{SemRegex, SimLlmOracle};
//!
//! let re = SemRegex::new(r"Subject: .*(?<Medicine name>: [a-z]+).*",
//!                        SimLlmOracle::new())?;
//! let mail = "Subject: cheap tramadol\nSubject: team lunch\n";
//! let matched: Vec<String> = re
//!     .scan_reader(mail.as_bytes())
//!     .filter_map(|v| {
//!         let v = v.expect("in-memory read cannot fail");
//!         v.matched.then(|| String::from_utf8_lossy(&v.bytes).into_owned())
//!     })
//!     .collect();
//! assert_eq!(matched, ["Subject: cheap tramadol"]);
//! # Ok::<(), semre::Error>(())
//! ```

use std::collections::VecDeque;
use std::io::{self, Read};

use crate::regex::SemRegex;

/// Reads a byte stream in fixed-size chunks and yields batches of
/// complete lines, handling lines that straddle (or exceed) a chunk.
///
/// ```
/// use semre::stream::LineChunks;
///
/// // A 4-byte chunk size forces every line to straddle a boundary.
/// let mut chunks = LineChunks::new("alpha\nbeta\rgamma\r\nd".as_bytes(), 4);
/// let mut lines: Vec<Vec<u8>> = Vec::new();
/// while let Some(batch) = chunks.next_batch().unwrap() {
///     lines.extend(batch);
/// }
/// // `\r` only counts as part of a terminator directly before `\n`.
/// assert_eq!(lines, [&b"alpha"[..], b"beta\rgamma", b"d"]);
/// ```
#[derive(Debug)]
pub struct LineChunks<R> {
    reader: R,
    /// Reusable read buffer of the configured chunk size.
    buf: Vec<u8>,
    /// Bytes read but not yet returned as complete lines.
    carry: Vec<u8>,
    bytes_read: u64,
    eof: bool,
}

impl<R: Read> LineChunks<R> {
    /// Wraps `reader`, reading `chunk_bytes` (clamped to at least 1)
    /// bytes per underlying read call.
    pub fn new(reader: R, chunk_bytes: usize) -> LineChunks<R> {
        LineChunks {
            reader,
            buf: vec![0u8; chunk_bytes.max(1)],
            carry: Vec::new(),
            bytes_read: 0,
            eof: false,
        }
    }

    /// Total bytes consumed from the reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The next batch of complete lines (terminators stripped), or
    /// `None` at end of input.  Reads more than one chunk only when a
    /// single line is longer than the chunk size.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn next_batch(&mut self) -> io::Result<Option<Vec<Vec<u8>>>> {
        loop {
            if self.eof {
                if self.carry.is_empty() {
                    return Ok(None);
                }
                // Final line without a trailing newline: delivered as is —
                // `str::lines` only strips `\r` as part of a `\r\n`
                // terminator, and there is no terminator here (the carry
                // never contains a `\n`).
                return Ok(Some(vec![std::mem::take(&mut self.carry)]));
            }
            let n = match self.reader.read(&mut self.buf) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if n == 0 {
                self.eof = true;
                continue;
            }
            self.bytes_read += n as u64;
            let (carry, buf) = (&mut self.carry, &self.buf);
            carry.extend_from_slice(&buf[..n]);
            // Split off everything up to the last newline; the remainder
            // carries over to the next batch.
            if let Some(last_nl) = self.carry.iter().rposition(|&b| b == b'\n') {
                let rest = self.carry.split_off(last_nl + 1);
                let complete = std::mem::replace(&mut self.carry, rest);
                let mut lines: Vec<Vec<u8>> = complete
                    .split(|&b| b == b'\n')
                    .map(|l| l.to_vec())
                    .collect();
                // `complete` ends with '\n', so the final piece is the
                // empty remainder after it — exactly what `str::lines`
                // does not yield.
                lines.pop();
                for line in &mut lines {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                }
                return Ok(Some(lines));
            }
            // No newline yet: the current line spans more than one chunk;
            // keep reading into the carry.
        }
    }
}

/// One line of a streaming scan: its 0-based index, its bytes
/// (terminator stripped), and the membership verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineVerdict {
    /// 0-based line number in the input.
    pub index: u64,
    /// The line's bytes, without the terminator.
    pub bytes: Vec<u8>,
    /// Whether the line belongs to the SemRE's language.
    pub matched: bool,
}

/// Iterator over the per-line verdicts of a streaming scan, returned by
/// [`SemRegex::scan_reader`].
///
/// On the batched oracle plane one [`BatchSession`](crate::BatchSession)
/// covers each window of [`SemRegex::chunk_lines`] lines, so repeated
/// oracle questions within a window reach the backend once.  After an
/// I/O error the iterator yields that error once and then fuses.
pub struct ScanReader<'r, R> {
    re: &'r SemRegex,
    chunks: LineChunks<R>,
    pending: VecDeque<LineVerdict>,
    next_index: u64,
    done: bool,
}

impl<R: Read> ScanReader<'_, R> {
    /// Total bytes consumed from the reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.chunks.bytes_read()
    }
}

impl<R: Read> Iterator for ScanReader<'_, R> {
    type Item = io::Result<LineVerdict>;

    fn next(&mut self) -> Option<io::Result<LineVerdict>> {
        loop {
            if let Some(verdict) = self.pending.pop_front() {
                return Some(Ok(verdict));
            }
            if self.done {
                return None;
            }
            match self.chunks.next_batch() {
                Ok(Some(batch)) => {
                    let batched = self.re.config().batched_oracle;
                    for window in batch.chunks(self.re.chunk_lines().max(1)) {
                        let mut session = self.re.session();
                        for bytes in window {
                            let matched = if batched {
                                self.re.is_match_in_session(bytes, &mut session)
                            } else {
                                self.re.is_match(bytes)
                            };
                            self.pending.push_back(LineVerdict {
                                index: self.next_index,
                                bytes: bytes.clone(),
                                matched,
                            });
                            self.next_index += 1;
                        }
                    }
                }
                Ok(None) => self.done = true,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<R: Read> std::iter::FusedIterator for ScanReader<'_, R> {}

impl SemRegex {
    /// Scans `reader` line by line without materializing the input:
    /// chunked reads of [`stream_chunk_bytes`](SemRegex::stream_chunk_bytes)
    /// bytes, lines reassembled across chunk boundaries, one verdict per
    /// line.  Peak memory is O(chunk size + longest line), independent of
    /// the input length.
    ///
    /// Verdicts are identical to splitting the input in memory and
    /// calling [`is_match`](SemRegex::is_match) per line.
    pub fn scan_reader<R: Read>(&self, reader: R) -> ScanReader<'_, R> {
        ScanReader {
            chunks: LineChunks::new(reader, self.stream_chunk_bytes()),
            re: self,
            pending: VecDeque::new(),
            next_index: 0,
            done: false,
        }
    }

    /// Scans several files in sequence, streaming each through
    /// [`scan_reader`](SemRegex::scan_reader) and yielding every line's
    /// verdict tagged with the file it came from.  A file that cannot be
    /// opened (or fails mid-read) yields one `(path, Err(_))` item and the
    /// scan moves on to the next file — per-file resilience, as a grep
    /// over a directory tree needs.
    ///
    /// This is the facade-level, sequential entry point for multi-file
    /// scanning; the `semre-grep` crate layers directory walking and
    /// file-level parallelism (`scan_tree`) on top of the same pipeline.
    ///
    /// ```
    /// use semre::{SemRegex, SimLlmOracle};
    ///
    /// let dir = std::env::temp_dir().join(format!("semre-paths-doc-{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// std::fs::write(dir.join("a.txt"), "Subject: cheap tramadol\n")?;
    /// std::fs::write(dir.join("b.txt"), "Subject: team lunch\n")?;
    ///
    /// let re = SemRegex::new(r"Subject: .*(?<Medicine name>: [a-z]+).*",
    ///                        SimLlmOracle::new())?;
    /// let matched: Vec<String> = re
    ///     .scan_paths([dir.join("a.txt"), dir.join("b.txt")])
    ///     .filter_map(|(path, verdict)| {
    ///         let verdict = verdict.expect("files are readable");
    ///         verdict.matched.then(|| path.display().to_string())
    ///     })
    ///     .collect();
    /// assert_eq!(matched.len(), 1);
    /// assert!(matched[0].ends_with("a.txt"));
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn scan_paths<P, I>(&self, paths: I) -> PathsScan<'_>
    where
        P: Into<std::path::PathBuf>,
        I: IntoIterator<Item = P>,
    {
        PathsScan {
            re: self,
            queue: paths.into_iter().map(Into::into).collect(),
            current: None,
        }
    }
}

/// Iterator over the per-line verdicts of a multi-file scan, returned by
/// [`SemRegex::scan_paths`].  Items are `(path, verdict)` pairs; an
/// unreadable file produces a single `Err` item and the iteration
/// continues with the next file.
pub struct PathsScan<'r> {
    re: &'r SemRegex,
    queue: VecDeque<std::path::PathBuf>,
    current: Option<(
        std::sync::Arc<std::path::PathBuf>,
        ScanReader<'r, std::fs::File>,
    )>,
}

impl Iterator for PathsScan<'_> {
    type Item = (std::sync::Arc<std::path::PathBuf>, io::Result<LineVerdict>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((path, reader)) = &mut self.current {
                match reader.next() {
                    Some(Ok(verdict)) => return Some((path.clone(), Ok(verdict))),
                    Some(Err(e)) => {
                        // Mid-read failure: report it once, drop the file.
                        let path = path.clone();
                        self.current = None;
                        return Some((path, Err(e)));
                    }
                    None => self.current = None,
                }
                continue;
            }
            let path = std::sync::Arc::new(self.queue.pop_front()?);
            match std::fs::File::open(path.as_ref()) {
                Ok(file) => self.current = Some((path, self.re.scan_reader(file))),
                Err(e) => return Some((path, Err(e))),
            }
        }
    }
}

impl std::iter::FusedIterator for PathsScan<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_oracle::SimLlmOracle;

    fn collect_lines(text: &str, chunk: usize) -> Vec<Vec<u8>> {
        let mut chunks = LineChunks::new(text.as_bytes(), chunk);
        let mut all = Vec::new();
        while let Some(batch) = chunks.next_batch().unwrap() {
            all.extend(batch);
        }
        all
    }

    #[test]
    fn chunked_line_splitting_matches_str_lines() {
        let cases = [
            "",
            "\n",
            "a\nb\nc\n",
            "a\nb\nc",
            "one line no newline",
            "\n\n\n",
            "mixed\r\ncrlf\nplain\rlone-cr\n",
            // A lone trailing \r with no final newline is part of the
            // line, not a terminator (str::lines keeps it too).
            "ends with cr\r",
            "a\nends with cr\r",
            "exactly8\nand-more\n",
            "a line that is much longer than any of the tiny chunk sizes used here\nshort\n",
        ];
        for text in cases {
            let expected: Vec<Vec<u8>> = text.lines().map(|l| l.as_bytes().to_vec()).collect();
            for chunk in [1, 2, 3, 7, 8, 9, 64, 4096] {
                assert_eq!(
                    collect_lines(text, chunk),
                    expected,
                    "text {text:?} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn bytes_read_tracks_consumption() {
        let mut chunks = LineChunks::new(&b"abc\ndef\n"[..], 3);
        while chunks.next_batch().unwrap().is_some() {}
        assert_eq!(chunks.bytes_read(), 8);
    }

    #[test]
    fn scan_reader_agrees_with_in_memory_scan() {
        let re = SemRegex::builder()
            .stream_chunk_bytes(5)
            .build(
                r"Subject: .*(?<Medicine name>: [a-z]+).*",
                SimLlmOracle::new(),
            )
            .unwrap();
        assert_eq!(re.stream_chunk_bytes(), 5);
        let text = "Subject: cheap viagra\nplain line\nSubject: agenda\n";
        let verdicts: Vec<LineVerdict> = re
            .scan_reader(text.as_bytes())
            .map(|v| v.unwrap())
            .collect();
        let expected: Vec<bool> = text.lines().map(|l| re.is_match(l.as_bytes())).collect();
        assert_eq!(verdicts.len(), expected.len());
        for (v, (i, line)) in verdicts.iter().zip(text.lines().enumerate()) {
            assert_eq!(v.index, i as u64);
            assert_eq!(v.bytes, line.as_bytes());
            assert_eq!(v.matched, expected[i], "line {i}");
        }
        // The iterator fuses.
        let mut it = re.scan_reader(text.as_bytes());
        it.by_ref().count();
        assert!(it.next().is_none());
    }

    #[test]
    fn scan_paths_streams_files_in_order_and_survives_missing_ones() {
        let dir = std::env::temp_dir().join(format!("semre-scan-paths-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.txt"), "Subject: cheap viagra\nplain\n").unwrap();
        std::fs::write(dir.join("b.txt"), "Subject: cheap viagra\n").unwrap();
        let re = SemRegex::new(
            r"Subject: .*(?<Medicine name>: [a-z]+).*",
            SimLlmOracle::new(),
        )
        .unwrap();

        let mut items = re.scan_paths([
            dir.join("a.txt"),
            dir.join("missing.txt"),
            dir.join("b.txt"),
        ]);
        let (path, verdict) = items.next().unwrap();
        assert!(path.ends_with("a.txt"));
        let verdict = verdict.unwrap();
        assert_eq!(verdict.index, 0);
        assert!(verdict.matched);
        let (_, second) = items.next().unwrap();
        assert!(!second.unwrap().matched);
        // The missing file yields one error, then the scan continues.
        let (path, err) = items.next().unwrap();
        assert!(path.ends_with("missing.txt"));
        assert_eq!(err.unwrap_err().kind(), io::ErrorKind::NotFound);
        let (path, verdict) = items.next().unwrap();
        assert!(path.ends_with("b.txt"));
        // Indexes restart per file.
        assert_eq!(verdict.unwrap().index, 0);
        assert!(items.next().is_none());
        assert!(items.next().is_none(), "fused after exhaustion");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_reader_surfaces_io_errors_once() {
        struct Failing(bool);
        impl Read for Failing {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0 {
                    return Err(io::Error::other("backend went away"));
                }
                self.0 = true;
                let src = b"ok line\npartial";
                buf[..src.len()].copy_from_slice(src);
                Ok(src.len())
            }
        }
        let re = SemRegex::new("ok line", semre_oracle::PalindromeOracle).unwrap();
        let mut it = re.scan_reader(Failing(false));
        let first = it.next().unwrap().unwrap();
        assert!(first.matched);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }
}
