//! Textual oracle specifications.
//!
//! Tools that take an oracle on the command line (the `grepo` CLI, the
//! experiment harness) describe backends with a small spec language; this
//! module owns its parsing and construction so every tool dispatches the
//! same way:
//!
//! ```text
//! sim-llm        the deterministic simulated LLM (default)
//! always-true    accept every question
//! always-false   reject every question
//! set:FILE       a SetOracle loaded from "query<TAB>accepted text" lines
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use semre_oracle::{ConstOracle, Oracle, SetOracle, SimLlmOracle};

use crate::Error;

/// A parsed oracle specification, ready to [`build`](OracleSpec::build).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum OracleSpec {
    /// The built-in simulated LLM ([`SimLlmOracle`]).
    #[default]
    SimLlm,
    /// Accept every query.
    AlwaysTrue,
    /// Reject every query.
    AlwaysFalse,
    /// A [`SetOracle`] loaded from a tab-separated file.
    SetFile(String),
}

impl OracleSpec {
    /// Parses a spec string (`sim-llm`, `always-true`, `always-false`, or
    /// `set:FILE`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] for an unknown kind or an empty `set:`
    /// path.  File contents are only read by [`build`](OracleSpec::build).
    pub fn parse(spec: &str) -> Result<OracleSpec, Error> {
        match spec {
            "sim-llm" => Ok(OracleSpec::SimLlm),
            "always-true" => Ok(OracleSpec::AlwaysTrue),
            "always-false" => Ok(OracleSpec::AlwaysFalse),
            other => match other.strip_prefix("set:") {
                Some(path) if !path.is_empty() => Ok(OracleSpec::SetFile(path.to_owned())),
                _ => Err(Error::Oracle(format!("unknown oracle kind {other:?}"))),
            },
        }
    }

    /// Builds the backend this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when a `set:` file cannot be read.
    pub fn build(&self) -> Result<Arc<dyn Oracle>, Error> {
        Ok(match self {
            OracleSpec::SimLlm => Arc::new(SimLlmOracle::new()),
            OracleSpec::AlwaysTrue => Arc::new(ConstOracle::always_true()),
            OracleSpec::AlwaysFalse => Arc::new(ConstOracle::always_false()),
            OracleSpec::SetFile(path) => {
                let content = std::fs::read_to_string(path)
                    .map_err(|e| Error::Oracle(format!("cannot read oracle file {path}: {e}")))?;
                Arc::new(parse_set_oracle(&content))
            }
        })
    }
}

impl FromStr for OracleSpec {
    type Err = Error;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        OracleSpec::parse(spec)
    }
}

impl fmt::Display for OracleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleSpec::SimLlm => f.write_str("sim-llm"),
            OracleSpec::AlwaysTrue => f.write_str("always-true"),
            OracleSpec::AlwaysFalse => f.write_str("always-false"),
            OracleSpec::SetFile(path) => write!(f, "set:{path}"),
        }
    }
}

/// Parses the `query<TAB>text` lines of a `set:` oracle file; blank lines
/// and lines starting with `#` are ignored.
pub fn parse_set_oracle(content: &str) -> SetOracle {
    let mut oracle = SetOracle::new();
    for line in content.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((query, text)) = line.split_once('\t') {
            oracle.insert(query, text);
        }
    }
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_build_and_round_trip() {
        for (spec, display) in [
            (OracleSpec::SimLlm, "sim-llm"),
            (OracleSpec::AlwaysTrue, "always-true"),
            (OracleSpec::AlwaysFalse, "always-false"),
            (OracleSpec::SetFile("x.tsv".into()), "set:x.tsv"),
        ] {
            assert_eq!(spec.to_string(), display);
            assert_eq!(display.parse::<OracleSpec>().unwrap(), spec);
        }
        assert!(OracleSpec::parse("magic").is_err());
        assert!(OracleSpec::parse("set:").is_err());

        let yes = OracleSpec::AlwaysTrue.build().unwrap();
        assert!(yes.holds("q", b"anything"));
        let no = OracleSpec::AlwaysFalse.build().unwrap();
        assert!(!no.holds("q", b"anything"));
        assert!(matches!(
            OracleSpec::SetFile("/definitely/not/here.tsv".into()).build(),
            Err(Error::Oracle(_))
        ));
    }

    #[test]
    fn set_oracle_file_format() {
        let oracle =
            parse_set_oracle("# comment\nCity\tParis\nCity\tHouston\n\nCeleb\tParis Hilton\n");
        assert!(oracle.holds("City", b"Paris"));
        assert!(oracle.holds("Celeb", b"Paris Hilton"));
        assert!(!oracle.holds("City", b"Paris Hilton"));
    }
}
