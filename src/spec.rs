//! Textual oracle specifications.
//!
//! Tools that take an oracle on the command line (the `grepo` CLI, the
//! experiment harness) describe backends with a small spec language; this
//! module owns its parsing and construction so every tool dispatches the
//! same way:
//!
//! ```text
//! sim-llm        the deterministic simulated LLM (default)
//! always-true    accept every question
//! always-false   reject every question
//! set:FILE       a SetOracle loaded from "query<TAB>accepted text" lines
//! flaky:P:S:A:I  fault injection: the inner spec I fails P% of calls
//!                (seed S), behind a retry wrapper with A attempts
//! tiered:T:I     cost-tiered routing: the `+`-separated stack T (from
//!                cache, screen, dict — or none) screens questions before
//!                they escalate to the authoritative inner spec I
//! breaker:K:C:I  circuit breaking: the inner spec I behind a breaker
//!                tripping after K consecutive call failures, failing
//!                fast for C calls per cooldown; breaker state is shared
//!                process-wide by the inner spec's identity
//! ```
//!
//! The `flaky:` form is how fault injection reaches every tool without
//! bespoke plumbing: it works on the `grepo` command line and — because
//! the canonical display form doubles as the daemon's `COMPILE` wire
//! token — against a running `semred` too.  `tiered:` and `breaker:`
//! compose the same way (their inner spec is the greedy remainder, so
//! `tiered:cache+dict:flaky:30:7:4:sim-llm` nests).

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use semre_oracle::{
    BuiltinTier, ConstOracle, Oracle, RetryCounters, RetryOracle, RetryPolicy, SetOracle,
    SimLlmOracle, TierCounters, TieredResolver,
};
use semre_workloads::{FlakyOracle, FlakySchedule};

use crate::Error;

/// A built backend, plus handles to any layer counters that must survive
/// the oracle's type erasure behind `Arc<dyn Oracle>` (see
/// [`build_with_counters`](OracleSpec::build_with_counters)).
#[derive(Clone)]
pub struct BuiltOracle {
    /// The backend, ready to be shared.
    pub oracle: Arc<dyn Oracle>,
    /// Counters of the retry layer, when the spec has one (`flaky:` and
    /// `breaker:` specs).
    pub retry: Option<Arc<RetryCounters>>,
    /// Per-tier routing counters, when the spec routes through a
    /// [`TieredResolver`] (`tiered:` specs).
    pub tiers: Option<Arc<TierCounters>>,
}

/// A parsed oracle specification, ready to [`build`](OracleSpec::build).
///
/// The [`Display`](fmt::Display) form is **canonical**: it round-trips
/// through [`FromStr`] losslessly, so it doubles as a wire token (the
/// `semred` protocol's `COMPILE <spec> …`) and as a cache / answer-log
/// key (`Hash + Eq`).  Wire contexts split on whitespace, so a spec whose
/// display form contains whitespace (possible only for `set:` paths)
/// cannot travel over the wire — [`wire_token`](OracleSpec::wire_token)
/// checks this.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum OracleSpec {
    /// The built-in simulated LLM ([`SimLlmOracle`]).
    #[default]
    SimLlm,
    /// Accept every query.
    AlwaysTrue,
    /// Reject every query.
    AlwaysFalse,
    /// A [`SetOracle`] loaded from a tab-separated file.
    SetFile(String),
    /// Deterministic fault injection: the inner spec's backend wrapped
    /// in a [`FlakyOracle`] failing `percent`% of calls (seeded), behind
    /// a [`RetryOracle`] making `attempts` attempts per call with zero
    /// backoff and no breaker — the sleep-free shape the fault-injection
    /// suite wants.
    Flaky {
        /// Failure percentage, `0..=100`.
        percent: u8,
        /// Seed of the per-call failure schedule.
        seed: u64,
        /// Retry attempts per call (including the first; min 1).
        attempts: u32,
        /// The backend being made unreliable.
        inner: Box<OracleSpec>,
    },
    /// Cost-tiered routing: the listed built-in tiers screen every
    /// question (cheapest first), escalating to the authoritative inner
    /// backend only on uncertainty.  An empty stack (`tiered:none:…`)
    /// routes everything straight through — the degenerate case the
    /// differential suite compares against.
    Tiered {
        /// The cheap tiers, in the order they were specified.
        tiers: Vec<BuiltinTier>,
        /// The authoritative backend.
        inner: Box<OracleSpec>,
    },
    /// Circuit breaking: the inner backend behind a [`RetryOracle`]
    /// whose breaker state is shared process-wide across every spec
    /// naming the same inner backend — one dead backend trips a single
    /// breaker for all tenants and compiled specs routing to it.
    Breaker {
        /// Consecutive call failures that trip the breaker (min 1).
        threshold: u32,
        /// Calls failed fast per open period before a half-open probe.
        cooldown: u32,
        /// The backend being protected.
        inner: Box<OracleSpec>,
    },
}

impl OracleSpec {
    /// Parses a spec string (`sim-llm`, `always-true`, `always-false`, or
    /// `set:FILE`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] for an unknown kind or an empty `set:`
    /// path.  File contents are only read by [`build`](OracleSpec::build).
    pub fn parse(spec: &str) -> Result<OracleSpec, Error> {
        match spec {
            "sim-llm" => Ok(OracleSpec::SimLlm),
            "always-true" => Ok(OracleSpec::AlwaysTrue),
            "always-false" => Ok(OracleSpec::AlwaysFalse),
            other => {
                if let Some(rest) = other.strip_prefix("flaky:") {
                    return parse_flaky(rest);
                }
                if let Some(rest) = other.strip_prefix("tiered:") {
                    return parse_tiered(rest);
                }
                if let Some(rest) = other.strip_prefix("breaker:") {
                    return parse_breaker(rest);
                }
                match other.strip_prefix("set:") {
                    Some(path) if !path.is_empty() => Ok(OracleSpec::SetFile(path.to_owned())),
                    _ => Err(Error::Oracle(format!("unknown oracle kind {other:?}"))),
                }
            }
        }
    }

    /// The canonical single-token form for line protocols, or an error
    /// when the display form cannot survive whitespace splitting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when the spec's display form contains
    /// whitespace (a `set:` path with spaces).
    pub fn wire_token(&self) -> Result<String, Error> {
        let token = self.to_string();
        if token.chars().any(char::is_whitespace) {
            return Err(Error::Oracle(format!(
                "oracle spec {token:?} contains whitespace and cannot be sent over the wire"
            )));
        }
        Ok(token)
    }

    /// Builds the backend this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when a `set:` file cannot be read.
    pub fn build(&self) -> Result<Arc<dyn Oracle>, Error> {
        Ok(self.build_with_counters()?.oracle)
    }

    /// Builds the backend, also returning the retry counters when the
    /// spec has a retry layer (`flaky:`, `breaker:`) and the tier
    /// counters when it routes through a [`TieredResolver`] (`tiered:`),
    /// so tools can report layer statistics in `--stats` after the
    /// oracle is type-erased.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when a `set:` file cannot be read.
    pub fn build_with_counters(&self) -> Result<BuiltOracle, Error> {
        let plain = |oracle: Arc<dyn Oracle>| BuiltOracle {
            oracle,
            retry: None,
            tiers: None,
        };
        Ok(match self {
            OracleSpec::SimLlm => plain(Arc::new(SimLlmOracle::new())),
            OracleSpec::AlwaysTrue => plain(Arc::new(ConstOracle::always_true())),
            OracleSpec::AlwaysFalse => plain(Arc::new(ConstOracle::always_false())),
            OracleSpec::SetFile(path) => {
                let content = std::fs::read_to_string(path)
                    .map_err(|e| Error::Oracle(format!("cannot read oracle file {path}: {e}")))?;
                plain(Arc::new(parse_set_oracle(&content)))
            }
            OracleSpec::Flaky {
                percent,
                seed,
                attempts,
                inner,
            } => {
                let backend = inner.build()?;
                let flaky = FlakyOracle::new(
                    backend,
                    FlakySchedule::with_rate(f64::from(*percent) / 100.0, *seed),
                );
                let retry = RetryOracle::with_policy(flaky, RetryPolicy::attempts(*attempts));
                let counters = retry.counters();
                BuiltOracle {
                    oracle: Arc::new(retry),
                    retry: Some(counters),
                    tiers: None,
                }
            }
            OracleSpec::Tiered { tiers, inner } => {
                // The inner build may itself carry retry counters (a
                // flaky or breaker authority); keep the handle so stats
                // report both layers.
                let built = inner.build_with_counters()?;
                let resolver = TieredResolver::with_builtins(tiers, built.oracle);
                let tier_counters = resolver.counters();
                BuiltOracle {
                    oracle: Arc::new(resolver),
                    retry: built.retry,
                    tiers: Some(tier_counters),
                }
            }
            OracleSpec::Breaker {
                threshold,
                cooldown,
                inner,
            } => {
                // Breaker state is keyed by the *inner* spec's canonical
                // form: every breaker spec protecting the same backend
                // shares one breaker, whatever pattern or tenant it was
                // compiled for.
                let identity = inner.to_string();
                let policy = |attempts: u32| RetryPolicy {
                    max_attempts: attempts.max(1),
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                    breaker_threshold: (*threshold).max(1),
                    breaker_cooldown: *cooldown,
                    jitter_seed: 0x5eed,
                };
                let (oracle, counters): (Arc<dyn Oracle>, Arc<RetryCounters>) =
                    if let OracleSpec::Flaky {
                        percent,
                        seed,
                        attempts,
                        inner: flaky_inner,
                    } = inner.as_ref()
                    {
                        // A flaky inner folds into the breaker's own
                        // retry wrapper: wrapping the flaky spec's
                        // ready-made RetryOracle would never trip,
                        // because that layer already converts failures
                        // into placeholder answers.
                        let backend = flaky_inner.build()?;
                        let flaky = FlakyOracle::new(
                            backend,
                            FlakySchedule::with_rate(f64::from(*percent) / 100.0, *seed),
                        );
                        let retry =
                            RetryOracle::with_shared_breaker(flaky, policy(*attempts), &identity);
                        let counters = retry.counters();
                        (Arc::new(retry), counters)
                    } else {
                        let backend = inner.build()?;
                        let retry = RetryOracle::with_shared_breaker(backend, policy(1), &identity);
                        let counters = retry.counters();
                        (Arc::new(retry), counters)
                    };
                BuiltOracle {
                    oracle,
                    retry: Some(counters),
                    tiers: None,
                }
            }
        })
    }
}

/// Parses the `<pct>:<seed>:<attempts>:<inner>` tail of a `flaky:` spec.
/// The inner spec is the greedy remainder, so nested specs with colons
/// (`set:FILE`, another `flaky:`) survive.
fn parse_flaky(rest: &str) -> Result<OracleSpec, Error> {
    let bad = |what: &str| {
        Error::Oracle(format!(
            "bad flaky spec ({what}); expected flaky:<pct>:<seed>:<attempts>:<inner>, got flaky:{rest}"
        ))
    };
    let mut parts = rest.splitn(4, ':');
    let percent: u8 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("percent"))?;
    if percent > 100 {
        return Err(bad("percent over 100"));
    }
    let seed: u64 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("seed"))?;
    let attempts: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("attempts"))?;
    if attempts == 0 {
        return Err(bad("zero attempts"));
    }
    let inner = parts
        .next()
        .filter(|i| !i.is_empty())
        .ok_or_else(|| bad("inner spec"))?;
    Ok(OracleSpec::Flaky {
        percent,
        seed,
        attempts,
        inner: Box::new(OracleSpec::parse(inner)?),
    })
}

/// Parses the `<stack>:<inner>` tail of a `tiered:` spec.  The stack is
/// `+`-separated built-in tier tokens (`cache`, `screen`, `dict`) or the
/// literal `none`; the inner spec is the greedy remainder, as in
/// `flaky:`.
fn parse_tiered(rest: &str) -> Result<OracleSpec, Error> {
    let bad = |what: &str| {
        Error::Oracle(format!(
            "bad tiered spec ({what}); expected tiered:<cache|screen|dict[+…]|none>:<inner>, got tiered:{rest}"
        ))
    };
    let (stack, inner) = rest.split_once(':').ok_or_else(|| bad("missing inner"))?;
    if inner.is_empty() {
        return Err(bad("empty inner spec"));
    }
    let tiers = if stack == "none" {
        Vec::new()
    } else {
        let mut tiers = Vec::new();
        for token in stack.split('+') {
            let tier =
                BuiltinTier::parse(token).ok_or_else(|| bad(&format!("unknown tier {token:?}")))?;
            if tiers.contains(&tier) {
                return Err(bad(&format!("duplicate tier {token:?}")));
            }
            tiers.push(tier);
        }
        tiers
    };
    Ok(OracleSpec::Tiered {
        tiers,
        inner: Box::new(OracleSpec::parse(inner)?),
    })
}

/// Parses the `<threshold>:<cooldown>:<inner>` tail of a `breaker:`
/// spec; the inner spec is the greedy remainder.
fn parse_breaker(rest: &str) -> Result<OracleSpec, Error> {
    let bad = |what: &str| {
        Error::Oracle(format!(
            "bad breaker spec ({what}); expected breaker:<threshold>:<cooldown>:<inner>, got breaker:{rest}"
        ))
    };
    let mut parts = rest.splitn(3, ':');
    let threshold: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("threshold"))?;
    if threshold == 0 {
        return Err(bad("zero threshold (would disable the breaker)"));
    }
    let cooldown: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("cooldown"))?;
    let inner = parts
        .next()
        .filter(|i| !i.is_empty())
        .ok_or_else(|| bad("inner spec"))?;
    Ok(OracleSpec::Breaker {
        threshold,
        cooldown,
        inner: Box::new(OracleSpec::parse(inner)?),
    })
}

impl FromStr for OracleSpec {
    type Err = Error;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        OracleSpec::parse(spec)
    }
}

impl fmt::Display for OracleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleSpec::SimLlm => f.write_str("sim-llm"),
            OracleSpec::AlwaysTrue => f.write_str("always-true"),
            OracleSpec::AlwaysFalse => f.write_str("always-false"),
            OracleSpec::SetFile(path) => write!(f, "set:{path}"),
            OracleSpec::Flaky {
                percent,
                seed,
                attempts,
                inner,
            } => write!(f, "flaky:{percent}:{seed}:{attempts}:{inner}"),
            OracleSpec::Tiered { tiers, inner } => {
                if tiers.is_empty() {
                    write!(f, "tiered:none:{inner}")
                } else {
                    let stack: Vec<&str> = tiers.iter().map(|t| t.token()).collect();
                    write!(f, "tiered:{}:{inner}", stack.join("+"))
                }
            }
            OracleSpec::Breaker {
                threshold,
                cooldown,
                inner,
            } => write!(f, "breaker:{threshold}:{cooldown}:{inner}"),
        }
    }
}

/// Parses the `query<TAB>text` lines of a `set:` oracle file; blank lines
/// and lines starting with `#` are ignored.
pub fn parse_set_oracle(content: &str) -> SetOracle {
    let mut oracle = SetOracle::new();
    for line in content.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((query, text)) = line.split_once('\t') {
            oracle.insert(query, text);
        }
    }
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_build_and_round_trip() {
        for (spec, display) in [
            (OracleSpec::SimLlm, "sim-llm"),
            (OracleSpec::AlwaysTrue, "always-true"),
            (OracleSpec::AlwaysFalse, "always-false"),
            (OracleSpec::SetFile("x.tsv".into()), "set:x.tsv"),
        ] {
            assert_eq!(spec.to_string(), display);
            assert_eq!(display.parse::<OracleSpec>().unwrap(), spec);
        }
        assert!(OracleSpec::parse("magic").is_err());
        assert!(OracleSpec::parse("set:").is_err());

        let yes = OracleSpec::AlwaysTrue.build().unwrap();
        assert!(yes.holds("q", b"anything"));
        let no = OracleSpec::AlwaysFalse.build().unwrap();
        assert!(!no.holds("q", b"anything"));
        assert!(matches!(
            OracleSpec::SetFile("/definitely/not/here.tsv".into()).build(),
            Err(Error::Oracle(_))
        ));
    }

    /// Every variant must survive `Display → FromStr` — the daemon uses
    /// the display form as its wire and cache key, so a variant that
    /// fails to round-trip would silently split one logical oracle into
    /// two store keys (or collapse two into one).
    #[test]
    fn every_variant_round_trips_canonically() {
        let variants: [(OracleSpec, &str); 14] = [
            (OracleSpec::SimLlm, "sim-llm"),
            (OracleSpec::AlwaysTrue, "always-true"),
            (OracleSpec::AlwaysFalse, "always-false"),
            (OracleSpec::SetFile("x.tsv".into()), "set:x.tsv"),
            // Paths with separators, dots, and a nested "set:" survive.
            (
                OracleSpec::SetFile("/a/b/c.d.tsv".into()),
                "set:/a/b/c.d.tsv",
            ),
            (OracleSpec::SetFile("set:inner".into()), "set:set:inner"),
            // Unicode path.
            (
                OracleSpec::SetFile("z\u{00fc}rich.tsv".into()),
                "set:z\u{00fc}rich.tsv",
            ),
            // Fault injection, including a colon-bearing inner spec.
            (
                OracleSpec::Flaky {
                    percent: 30,
                    seed: 7,
                    attempts: 4,
                    inner: Box::new(OracleSpec::SimLlm),
                },
                "flaky:30:7:4:sim-llm",
            ),
            (
                OracleSpec::Flaky {
                    percent: 100,
                    seed: 0,
                    attempts: 1,
                    inner: Box::new(OracleSpec::SetFile("a:b.tsv".into())),
                },
                "flaky:100:0:1:set:a:b.tsv",
            ),
            // Tiered routing, in all three tracked stack shapes.
            (
                OracleSpec::Tiered {
                    tiers: vec![],
                    inner: Box::new(OracleSpec::SimLlm),
                },
                "tiered:none:sim-llm",
            ),
            (
                OracleSpec::Tiered {
                    tiers: vec![BuiltinTier::Cache, BuiltinTier::Screen, BuiltinTier::Dict],
                    inner: Box::new(OracleSpec::SimLlm),
                },
                "tiered:cache+screen+dict:sim-llm",
            ),
            // A colon-bearing (flaky) authority survives the greedy tail.
            (
                OracleSpec::Tiered {
                    tiers: vec![BuiltinTier::Dict],
                    inner: Box::new(OracleSpec::Flaky {
                        percent: 30,
                        seed: 7,
                        attempts: 4,
                        inner: Box::new(OracleSpec::SimLlm),
                    }),
                },
                "tiered:dict:flaky:30:7:4:sim-llm",
            ),
            // Circuit breaking, flat and over a flaky inner.
            (
                OracleSpec::Breaker {
                    threshold: 2,
                    cooldown: 5,
                    inner: Box::new(OracleSpec::SimLlm),
                },
                "breaker:2:5:sim-llm",
            ),
            (
                OracleSpec::Breaker {
                    threshold: 1,
                    cooldown: 3,
                    inner: Box::new(OracleSpec::Flaky {
                        percent: 100,
                        seed: 9,
                        attempts: 1,
                        inner: Box::new(OracleSpec::AlwaysTrue),
                    }),
                },
                "breaker:1:3:flaky:100:9:1:always-true",
            ),
        ];
        for (spec, display) in variants {
            assert_eq!(spec.to_string(), display, "canonical display");
            let reparsed: OracleSpec = display.parse().unwrap();
            assert_eq!(reparsed, spec, "FromStr(Display) identity");
            // Round-tripping the *display* is also the identity.
            assert_eq!(reparsed.to_string(), display);
        }
        // The default is the simulated LLM, and its display parses back.
        assert_eq!(OracleSpec::default(), OracleSpec::SimLlm);
        assert_eq!(
            OracleSpec::default()
                .to_string()
                .parse::<OracleSpec>()
                .unwrap(),
            OracleSpec::SimLlm
        );
    }

    #[test]
    fn hash_agrees_with_canonical_equality() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for spec in [
            OracleSpec::SimLlm,
            OracleSpec::AlwaysTrue,
            OracleSpec::AlwaysFalse,
            OracleSpec::SetFile("a.tsv".into()),
            OracleSpec::SetFile("b.tsv".into()),
        ] {
            assert!(seen.insert(spec.clone()), "distinct specs hash apart");
            assert!(!seen.insert(spec), "equal specs collapse");
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn wire_token_rejects_whitespace_paths_only() {
        assert_eq!(OracleSpec::SimLlm.wire_token().unwrap(), "sim-llm");
        assert_eq!(
            OracleSpec::SetFile("ok.tsv".into()).wire_token().unwrap(),
            "set:ok.tsv"
        );
        assert!(OracleSpec::SetFile("has space.tsv".into())
            .wire_token()
            .is_err());
        assert!(OracleSpec::SetFile("tab\there.tsv".into())
            .wire_token()
            .is_err());
    }

    #[test]
    fn flaky_specs_parse_validate_and_build_with_counters() {
        // Malformed tails are rejected with a usage hint.
        for bad in [
            "flaky:",
            "flaky:30",
            "flaky:30:7",
            "flaky:30:7:4",
            "flaky:30:7:4:",
            "flaky:101:7:4:sim-llm",
            "flaky:30:7:0:sim-llm",
            "flaky:x:7:4:sim-llm",
            "flaky:30:7:4:nonsense",
        ] {
            assert!(OracleSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }

        // A 0%-failure spec behaves exactly like its inner backend, and
        // the counters handle observes the retry layer's attempts.
        let spec = OracleSpec::parse("flaky:0:1:3:always-true").unwrap();
        let built = spec.build_with_counters().unwrap();
        let counters = built.retry.expect("flaky specs expose retry counters");
        assert!(built.oracle.holds("q", b"x"));
        assert_eq!(counters.snapshot().attempts, 1);
        assert_eq!(counters.snapshot().failures, 0);
        assert!(built.tiers.is_none());

        // 100% failure with one attempt: placeholder + fault recorded.
        semre_oracle::clear_fault();
        let spec = OracleSpec::parse("flaky:100:1:1:always-true").unwrap();
        let built = spec.build_with_counters().unwrap();
        assert!(!built.oracle.holds("q", b"x"), "placeholder answer");
        assert!(semre_oracle::take_fault().is_some(), "fault surfaced");
        assert_eq!(built.retry.unwrap().snapshot().failures, 1);

        // Non-flaky specs report no counters, via either entry point.
        let plain = OracleSpec::SimLlm.build_with_counters().unwrap();
        assert!(plain.retry.is_none() && plain.tiers.is_none());
        assert!(OracleSpec::SimLlm.build().is_ok());
    }

    #[test]
    fn tiered_specs_parse_validate_and_route() {
        // Malformed stacks are rejected with a usage hint.
        for bad in [
            "tiered:",
            "tiered:cache",
            "tiered:cache:",
            "tiered:llm:sim-llm",
            "tiered:cache+cache:sim-llm",
            "tiered:cache+:sim-llm",
            "tiered::sim-llm",
            "tiered:none:nonsense",
        ] {
            assert!(OracleSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }

        // A full stack answers lexicon questions without the authority
        // and exposes the tier counters.
        let spec = OracleSpec::parse("tiered:cache+screen+dict:sim-llm").unwrap();
        let built = spec.build_with_counters().unwrap();
        let tiers = built.tiers.expect("tiered specs expose tier counters");
        assert!(built.oracle.holds("Medicine name", b"tramadol"));
        assert!(!built.oracle.holds("Medicine name", b"paperclip"));
        let stats = tiers.snapshot();
        assert_eq!(stats.authority_keys(), 0, "{stats:?}");
        assert_eq!(stats.cheap_hits(), 2, "{stats:?}");
        assert!(built.retry.is_none());

        // An empty stack escalates everything (the flat-backend shape).
        let spec = OracleSpec::parse("tiered:none:sim-llm").unwrap();
        let built = spec.build_with_counters().unwrap();
        assert!(built.oracle.holds("Medicine name", b"tramadol"));
        let tiers = built.tiers.unwrap();
        assert_eq!(tiers.snapshot().authority_keys(), 1);

        // A flaky authority threads its retry counters through.
        let spec = OracleSpec::parse("tiered:none:flaky:0:1:3:always-true").unwrap();
        let built = spec.build_with_counters().unwrap();
        assert!(built.oracle.holds("q", b"x"));
        assert_eq!(built.retry.unwrap().snapshot().attempts, 1);
    }

    #[test]
    fn breaker_specs_parse_validate_and_share_state_by_identity() {
        for bad in [
            "breaker:",
            "breaker:2",
            "breaker:2:5",
            "breaker:2:5:",
            "breaker:0:5:sim-llm",
            "breaker:x:5:sim-llm",
            "breaker:2:5:nonsense",
        ] {
            assert!(OracleSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }

        // A healthy inner passes through (and the breaker stays closed).
        let built = OracleSpec::parse("breaker:2:5:always-true")
            .unwrap()
            .build_with_counters()
            .unwrap();
        assert!(built.oracle.holds("q", b"x"));
        let counters = built.retry.expect("breaker specs expose retry counters");
        assert_eq!(counters.snapshot().breaker_trips, 0);

        // Two *separately built* specs over the same always-failing inner
        // share one breaker: the first build trips it, the second fails
        // fast without ever reaching its own backend.
        semre_oracle::clear_fault();
        let spec = "breaker:1:6:flaky:100:41:1:always-true";
        let first = OracleSpec::parse(spec)
            .unwrap()
            .build_with_counters()
            .unwrap();
        let second = OracleSpec::parse(spec)
            .unwrap()
            .build_with_counters()
            .unwrap();
        assert!(!first.oracle.holds("q", b"x"), "failure trips the breaker");
        assert_eq!(first.retry.as_ref().unwrap().snapshot().breaker_trips, 1);
        semre_oracle::clear_fault();
        assert!(!second.oracle.holds("q", b"x"), "fast-fail placeholder");
        let fault = semre_oracle::take_fault().expect("fast fail faults");
        assert!(fault.message.contains("circuit breaker"), "{fault}");
        let stats = second.retry.unwrap().snapshot();
        assert_eq!(stats.fast_fails, 1, "tripped by the sibling build");
        assert_eq!(stats.attempts, 0, "backend never consulted");
    }

    #[test]
    fn set_oracle_file_format() {
        let oracle =
            parse_set_oracle("# comment\nCity\tParis\nCity\tHouston\n\nCeleb\tParis Hilton\n");
        assert!(oracle.holds("City", b"Paris"));
        assert!(oracle.holds("Celeb", b"Paris Hilton"));
        assert!(!oracle.holds("City", b"Paris Hilton"));
    }
}
