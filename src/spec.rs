//! Textual oracle specifications.
//!
//! Tools that take an oracle on the command line (the `grepo` CLI, the
//! experiment harness) describe backends with a small spec language; this
//! module owns its parsing and construction so every tool dispatches the
//! same way:
//!
//! ```text
//! sim-llm        the deterministic simulated LLM (default)
//! always-true    accept every question
//! always-false   reject every question
//! set:FILE       a SetOracle loaded from "query<TAB>accepted text" lines
//! flaky:P:S:A:I  fault injection: the inner spec I fails P% of calls
//!                (seed S), behind a retry wrapper with A attempts
//! ```
//!
//! The `flaky:` form is how fault injection reaches every tool without
//! bespoke plumbing: it works on the `grepo` command line and — because
//! the canonical display form doubles as the daemon's `COMPILE` wire
//! token — against a running `semred` too.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use semre_oracle::{
    ConstOracle, Oracle, RetryCounters, RetryOracle, RetryPolicy, SetOracle, SimLlmOracle,
};
use semre_workloads::{FlakyOracle, FlakySchedule};

use crate::Error;

/// A built backend, plus a handle to the counters of its retry layer
/// when the spec has one (`flaky:` — see
/// [`build_with_counters`](OracleSpec::build_with_counters)).
pub type BuiltOracle = (Arc<dyn Oracle>, Option<Arc<RetryCounters>>);

/// A parsed oracle specification, ready to [`build`](OracleSpec::build).
///
/// The [`Display`](fmt::Display) form is **canonical**: it round-trips
/// through [`FromStr`] losslessly, so it doubles as a wire token (the
/// `semred` protocol's `COMPILE <spec> …`) and as a cache / answer-log
/// key (`Hash + Eq`).  Wire contexts split on whitespace, so a spec whose
/// display form contains whitespace (possible only for `set:` paths)
/// cannot travel over the wire — [`wire_token`](OracleSpec::wire_token)
/// checks this.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum OracleSpec {
    /// The built-in simulated LLM ([`SimLlmOracle`]).
    #[default]
    SimLlm,
    /// Accept every query.
    AlwaysTrue,
    /// Reject every query.
    AlwaysFalse,
    /// A [`SetOracle`] loaded from a tab-separated file.
    SetFile(String),
    /// Deterministic fault injection: the inner spec's backend wrapped
    /// in a [`FlakyOracle`] failing `percent`% of calls (seeded), behind
    /// a [`RetryOracle`] making `attempts` attempts per call with zero
    /// backoff and no breaker — the sleep-free shape the fault-injection
    /// suite wants.
    Flaky {
        /// Failure percentage, `0..=100`.
        percent: u8,
        /// Seed of the per-call failure schedule.
        seed: u64,
        /// Retry attempts per call (including the first; min 1).
        attempts: u32,
        /// The backend being made unreliable.
        inner: Box<OracleSpec>,
    },
}

impl OracleSpec {
    /// Parses a spec string (`sim-llm`, `always-true`, `always-false`, or
    /// `set:FILE`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] for an unknown kind or an empty `set:`
    /// path.  File contents are only read by [`build`](OracleSpec::build).
    pub fn parse(spec: &str) -> Result<OracleSpec, Error> {
        match spec {
            "sim-llm" => Ok(OracleSpec::SimLlm),
            "always-true" => Ok(OracleSpec::AlwaysTrue),
            "always-false" => Ok(OracleSpec::AlwaysFalse),
            other => {
                if let Some(rest) = other.strip_prefix("flaky:") {
                    return parse_flaky(rest);
                }
                match other.strip_prefix("set:") {
                    Some(path) if !path.is_empty() => Ok(OracleSpec::SetFile(path.to_owned())),
                    _ => Err(Error::Oracle(format!("unknown oracle kind {other:?}"))),
                }
            }
        }
    }

    /// The canonical single-token form for line protocols, or an error
    /// when the display form cannot survive whitespace splitting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when the spec's display form contains
    /// whitespace (a `set:` path with spaces).
    pub fn wire_token(&self) -> Result<String, Error> {
        let token = self.to_string();
        if token.chars().any(char::is_whitespace) {
            return Err(Error::Oracle(format!(
                "oracle spec {token:?} contains whitespace and cannot be sent over the wire"
            )));
        }
        Ok(token)
    }

    /// Builds the backend this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when a `set:` file cannot be read.
    pub fn build(&self) -> Result<Arc<dyn Oracle>, Error> {
        Ok(self.build_with_counters()?.0)
    }

    /// Builds the backend, also returning the retry counters when the
    /// spec has a retry layer (`flaky:`), so tools can report
    /// attempts/retries/failures in `--stats` after the oracle is
    /// type-erased.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Oracle`] when a `set:` file cannot be read.
    pub fn build_with_counters(&self) -> Result<BuiltOracle, Error> {
        Ok(match self {
            OracleSpec::SimLlm => (Arc::new(SimLlmOracle::new()), None),
            OracleSpec::AlwaysTrue => (Arc::new(ConstOracle::always_true()), None),
            OracleSpec::AlwaysFalse => (Arc::new(ConstOracle::always_false()), None),
            OracleSpec::SetFile(path) => {
                let content = std::fs::read_to_string(path)
                    .map_err(|e| Error::Oracle(format!("cannot read oracle file {path}: {e}")))?;
                (Arc::new(parse_set_oracle(&content)), None)
            }
            OracleSpec::Flaky {
                percent,
                seed,
                attempts,
                inner,
            } => {
                let backend = inner.build()?;
                let flaky = FlakyOracle::new(
                    backend,
                    FlakySchedule::with_rate(f64::from(*percent) / 100.0, *seed),
                );
                let retry = RetryOracle::with_policy(flaky, RetryPolicy::attempts(*attempts));
                let counters = retry.counters();
                (Arc::new(retry), Some(counters))
            }
        })
    }
}

/// Parses the `<pct>:<seed>:<attempts>:<inner>` tail of a `flaky:` spec.
/// The inner spec is the greedy remainder, so nested specs with colons
/// (`set:FILE`, another `flaky:`) survive.
fn parse_flaky(rest: &str) -> Result<OracleSpec, Error> {
    let bad = |what: &str| {
        Error::Oracle(format!(
            "bad flaky spec ({what}); expected flaky:<pct>:<seed>:<attempts>:<inner>, got flaky:{rest}"
        ))
    };
    let mut parts = rest.splitn(4, ':');
    let percent: u8 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("percent"))?;
    if percent > 100 {
        return Err(bad("percent over 100"));
    }
    let seed: u64 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("seed"))?;
    let attempts: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| bad("attempts"))?;
    if attempts == 0 {
        return Err(bad("zero attempts"));
    }
    let inner = parts
        .next()
        .filter(|i| !i.is_empty())
        .ok_or_else(|| bad("inner spec"))?;
    Ok(OracleSpec::Flaky {
        percent,
        seed,
        attempts,
        inner: Box::new(OracleSpec::parse(inner)?),
    })
}

impl FromStr for OracleSpec {
    type Err = Error;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        OracleSpec::parse(spec)
    }
}

impl fmt::Display for OracleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleSpec::SimLlm => f.write_str("sim-llm"),
            OracleSpec::AlwaysTrue => f.write_str("always-true"),
            OracleSpec::AlwaysFalse => f.write_str("always-false"),
            OracleSpec::SetFile(path) => write!(f, "set:{path}"),
            OracleSpec::Flaky {
                percent,
                seed,
                attempts,
                inner,
            } => write!(f, "flaky:{percent}:{seed}:{attempts}:{inner}"),
        }
    }
}

/// Parses the `query<TAB>text` lines of a `set:` oracle file; blank lines
/// and lines starting with `#` are ignored.
pub fn parse_set_oracle(content: &str) -> SetOracle {
    let mut oracle = SetOracle::new();
    for line in content.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((query, text)) = line.split_once('\t') {
            oracle.insert(query, text);
        }
    }
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_build_and_round_trip() {
        for (spec, display) in [
            (OracleSpec::SimLlm, "sim-llm"),
            (OracleSpec::AlwaysTrue, "always-true"),
            (OracleSpec::AlwaysFalse, "always-false"),
            (OracleSpec::SetFile("x.tsv".into()), "set:x.tsv"),
        ] {
            assert_eq!(spec.to_string(), display);
            assert_eq!(display.parse::<OracleSpec>().unwrap(), spec);
        }
        assert!(OracleSpec::parse("magic").is_err());
        assert!(OracleSpec::parse("set:").is_err());

        let yes = OracleSpec::AlwaysTrue.build().unwrap();
        assert!(yes.holds("q", b"anything"));
        let no = OracleSpec::AlwaysFalse.build().unwrap();
        assert!(!no.holds("q", b"anything"));
        assert!(matches!(
            OracleSpec::SetFile("/definitely/not/here.tsv".into()).build(),
            Err(Error::Oracle(_))
        ));
    }

    /// Every variant must survive `Display → FromStr` — the daemon uses
    /// the display form as its wire and cache key, so a variant that
    /// fails to round-trip would silently split one logical oracle into
    /// two store keys (or collapse two into one).
    #[test]
    fn every_variant_round_trips_canonically() {
        let variants: [(OracleSpec, &str); 9] = [
            (OracleSpec::SimLlm, "sim-llm"),
            (OracleSpec::AlwaysTrue, "always-true"),
            (OracleSpec::AlwaysFalse, "always-false"),
            (OracleSpec::SetFile("x.tsv".into()), "set:x.tsv"),
            // Paths with separators, dots, and a nested "set:" survive.
            (
                OracleSpec::SetFile("/a/b/c.d.tsv".into()),
                "set:/a/b/c.d.tsv",
            ),
            (OracleSpec::SetFile("set:inner".into()), "set:set:inner"),
            // Unicode path.
            (
                OracleSpec::SetFile("z\u{00fc}rich.tsv".into()),
                "set:z\u{00fc}rich.tsv",
            ),
            // Fault injection, including a colon-bearing inner spec.
            (
                OracleSpec::Flaky {
                    percent: 30,
                    seed: 7,
                    attempts: 4,
                    inner: Box::new(OracleSpec::SimLlm),
                },
                "flaky:30:7:4:sim-llm",
            ),
            (
                OracleSpec::Flaky {
                    percent: 100,
                    seed: 0,
                    attempts: 1,
                    inner: Box::new(OracleSpec::SetFile("a:b.tsv".into())),
                },
                "flaky:100:0:1:set:a:b.tsv",
            ),
        ];
        for (spec, display) in variants {
            assert_eq!(spec.to_string(), display, "canonical display");
            let reparsed: OracleSpec = display.parse().unwrap();
            assert_eq!(reparsed, spec, "FromStr(Display) identity");
            // Round-tripping the *display* is also the identity.
            assert_eq!(reparsed.to_string(), display);
        }
        // The default is the simulated LLM, and its display parses back.
        assert_eq!(OracleSpec::default(), OracleSpec::SimLlm);
        assert_eq!(
            OracleSpec::default()
                .to_string()
                .parse::<OracleSpec>()
                .unwrap(),
            OracleSpec::SimLlm
        );
    }

    #[test]
    fn hash_agrees_with_canonical_equality() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for spec in [
            OracleSpec::SimLlm,
            OracleSpec::AlwaysTrue,
            OracleSpec::AlwaysFalse,
            OracleSpec::SetFile("a.tsv".into()),
            OracleSpec::SetFile("b.tsv".into()),
        ] {
            assert!(seen.insert(spec.clone()), "distinct specs hash apart");
            assert!(!seen.insert(spec), "equal specs collapse");
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn wire_token_rejects_whitespace_paths_only() {
        assert_eq!(OracleSpec::SimLlm.wire_token().unwrap(), "sim-llm");
        assert_eq!(
            OracleSpec::SetFile("ok.tsv".into()).wire_token().unwrap(),
            "set:ok.tsv"
        );
        assert!(OracleSpec::SetFile("has space.tsv".into())
            .wire_token()
            .is_err());
        assert!(OracleSpec::SetFile("tab\there.tsv".into())
            .wire_token()
            .is_err());
    }

    #[test]
    fn flaky_specs_parse_validate_and_build_with_counters() {
        // Malformed tails are rejected with a usage hint.
        for bad in [
            "flaky:",
            "flaky:30",
            "flaky:30:7",
            "flaky:30:7:4",
            "flaky:30:7:4:",
            "flaky:101:7:4:sim-llm",
            "flaky:30:7:0:sim-llm",
            "flaky:x:7:4:sim-llm",
            "flaky:30:7:4:nonsense",
        ] {
            assert!(OracleSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }

        // A 0%-failure spec behaves exactly like its inner backend, and
        // the counters handle observes the retry layer's attempts.
        let spec = OracleSpec::parse("flaky:0:1:3:always-true").unwrap();
        let (oracle, counters) = spec.build_with_counters().unwrap();
        let counters = counters.expect("flaky specs expose retry counters");
        assert!(oracle.holds("q", b"x"));
        assert_eq!(counters.snapshot().attempts, 1);
        assert_eq!(counters.snapshot().failures, 0);

        // 100% failure with one attempt: placeholder + fault recorded.
        semre_oracle::clear_fault();
        let spec = OracleSpec::parse("flaky:100:1:1:always-true").unwrap();
        let (oracle, counters) = spec.build_with_counters().unwrap();
        assert!(!oracle.holds("q", b"x"), "placeholder answer");
        assert!(semre_oracle::take_fault().is_some(), "fault surfaced");
        assert_eq!(counters.unwrap().snapshot().failures, 1);

        // Non-flaky specs report no counters, via either entry point.
        assert!(OracleSpec::SimLlm
            .build_with_counters()
            .unwrap()
            .1
            .is_none());
        assert!(OracleSpec::SimLlm.build().is_ok());
    }

    #[test]
    fn set_oracle_file_format() {
        let oracle =
            parse_set_oracle("# comment\nCity\tParis\nCity\tHouston\n\nCeleb\tParis Hilton\n");
        assert!(oracle.holds("City", b"Paris"));
        assert!(oracle.holds("Celeb", b"Paris Hilton"));
        assert!(!oracle.holds("City", b"Paris Hilton"));
    }
}
