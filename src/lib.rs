//! # semre — semantic regular expressions, end to end
//!
//! A production-oriented Rust implementation of *Membership Testing for
//! Semantic Regular Expressions* (PLDI 2025).  Semantic regular expressions
//! (SemREs) extend classical regular expressions with oracle refinements
//! `r ∧ ⟨q⟩` that delegate judgements like "is this a medicine name?",
//! "does this domain exist?", or "is this a hard-coded password?" to an
//! external oracle — an LLM, a database, a network service, or a file
//! system.
//!
//! ## Quick start
//!
//! The facade API is [`SemRegex`]: a compiled, reusable, cheaply-cloneable
//! pattern handle (`Clone + Send + Sync`) holding the elaborated automaton
//! and a shared oracle.  It answers whole-input membership
//! ([`is_match`](SemRegex::is_match) — the paper's `w ∈ ⟦r⟧`) and
//! unanchored span search ([`find`](SemRegex::find),
//! [`find_iter`](SemRegex::find_iter),
//! [`shortest_match`](SemRegex::shortest_match)):
//!
//! ```
//! use semre::{SemRegex, SimLlmOracle};
//!
//! // Example 2.8 of the paper: spam subjects advertising a medicine.
//! let re = SemRegex::new(r"Subject: .* (?<Medicine name>: [a-zA-Z]+) .*",
//!                        SimLlmOracle::new())?;
//!
//! assert!(re.is_match(b"Subject: buy xanax online today"));
//! assert!(!re.is_match(b"Subject: minutes of the weekly sync"));
//!
//! // Span search: where inside a noisy line does the pattern match?
//! // (Leftmost-earliest: the smallest start, then the smallest end.)
//! let line = b"[fwd] Subject: buy xanax online today (auto)";
//! let m = re.find(line).expect("span");
//! assert_eq!(m.as_bytes(), b"Subject: buy xanax ");
//! assert_eq!(m.start(), 6);
//! # Ok::<(), semre::Error>(())
//! ```
//!
//! Non-default configurations go through [`SemRegexBuilder`] (per-call vs
//! batched oracle plane, the dynamic-programming baseline, scan chunk
//! sizes, the literal prescan), and every fallible facade call returns the
//! unified [`Error`].  Large inputs stream without being materialized:
//! [`SemRegex::scan_reader`] (and the [`stream`] module it builds on)
//! decides membership line by line from chunked reads, with peak memory
//! bounded by the chunk size plus the longest line.
//!
//! ## Internals
//!
//! The facade sits on the workspace's internal crates, re-exported here as
//! modules for direct use (see `DESIGN.md`, "Facade vs internals"):
//!
//! * [`syntax`] — the SemRE AST, parser, printer, and structural analyses;
//! * [`oracle`] — the [`Oracle`] trait, the batched query plane
//!   ([`BatchOracle`], [`QueryLedger`], [`BatchSession`]), caching /
//!   instrumentation wrappers, and a library of concrete oracles;
//! * [`automata`] — semantic NFAs, the Thompson construction, and the
//!   ε-feasibility closure;
//! * [`core`] — the query-graph matcher ([`Matcher`]), its unanchored
//!   search entry points, and the DP baseline ([`DpMatcher`]);
//! * [`workloads`] — synthetic corpora, the paper's nine benchmark SemREs,
//!   and the lower-bound / reduction experiments.
//!
//! The `semre-grep` crate (the `grep_O` scanning engine and the `grepo`
//! CLI) builds *on top of* this facade, so it is not re-exported here; use
//! it directly for line-oriented scanning.
//!
//! See the `examples/` directory for larger scenarios (credential scanning,
//! spam filtering, triangle finding), `DESIGN.md` for the architecture, and
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod regex;
mod spec;
pub mod stream;

pub use error::Error;
pub use regex::{
    Match, Matches, SemRegex, SemRegexBuilder, DEFAULT_CHUNK_LINES, DEFAULT_STREAM_CHUNK_BYTES,
};
pub use spec::{parse_set_oracle, BuiltOracle, OracleSpec};
pub use stream::{LineChunks, LineVerdict, PathsScan, ScanReader};

pub use semre_automata as automata;
pub use semre_core as core;
pub use semre_oracle as oracle;
pub use semre_syntax as syntax;
pub use semre_workloads as workloads;

pub use semre_core::{DpMatcher, EvalReport, Matcher, MatcherConfig, SearchKind, SuspendedMatch};
pub use semre_oracle::{
    clear_fault, fault_pending, record_fault, take_fault, BatchOracle, BatchSession, BatchStats,
    CachingOracle, ConstOracle, Instrumented, LatencyModel, Oracle, OracleError, OracleErrorKind,
    PalindromeOracle, PersistConfig, PersistentAnswerStore, PredicateOracle, QueryKey, QueryLedger,
    ReplayReport, ResolverPool, ResolverStats, RetryCounters, RetryOracle, RetryPolicy, RetryStats,
    ScanControl, ScanInterrupt, SetOracle, SharedSession, SimLlmOracle, TableOracle, TryOracle,
};
pub use semre_oracle::{
    BuiltinTier, DictDriver, DriverCaps, LatencyClass, ScreenDriver, TierAnswer, TierCounters,
    TierDriver, TierStats, TierTally, TieredResolver, AUTHORITY_TIER, DEFAULT_QUESTION_COST,
};
pub use semre_syntax::{parse, skeleton, CharClass, ParseSemreError, QueryName, Semre};
