//! # semre — semantic regular expressions, end to end
//!
//! A production-oriented Rust implementation of *Membership Testing for
//! Semantic Regular Expressions* (PLDI 2025).  Semantic regular expressions
//! (SemREs) extend classical regular expressions with oracle refinements
//! `r ∧ ⟨q⟩` that delegate judgements like "is this a medicine name?",
//! "does this domain exist?", or "is this a hard-coded password?" to an
//! external oracle — an LLM, a database, a network service, or a file
//! system.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`syntax`] — the SemRE AST, parser, printer, and structural analyses;
//! * [`oracle`] — the [`Oracle`](oracle::Oracle) trait, the batched query
//!   plane ([`BatchOracle`], [`QueryLedger`], [`BatchSession`]), caching /
//!   instrumentation wrappers, and a library of concrete oracles;
//! * [`automata`] — semantic NFAs, the Thompson construction, and the
//!   ε-feasibility closure;
//! * [`core`] — the query-graph matcher ([`Matcher`]) and the
//!   dynamic-programming baseline ([`DpMatcher`]);
//! * [`grep`] — the `grep_O` line-scanning engine and CLI, including
//!   chunk-batched scans ([`grep::scan_batched`]);
//! * [`workloads`] — synthetic corpora, the paper's nine benchmark SemREs,
//!   and the lower-bound / reduction experiments.
//!
//! ## Quick start
//!
//! ```
//! use semre::{Matcher, SimLlmOracle};
//!
//! // Example 2.8 of the paper: flag spam subject lines that mention a
//! // medicine name as a whole word.
//! let pattern = semre::parse(r"Subject: .* (?<Medicine name>: [a-zA-Z]+) .*")?;
//! let matcher = Matcher::new(pattern, SimLlmOracle::new());
//!
//! assert!(matcher.is_match(b"Subject: buy xanax online today"));
//! assert!(!matcher.is_match(b"Subject: minutes of the weekly sync"));
//! # Ok::<(), semre::ParseSemreError>(())
//! ```
//!
//! See the `examples/` directory for larger scenarios (credential scanning,
//! spam filtering, triangle finding), `DESIGN.md` for the architecture —
//! in particular the batched oracle query plane threaded through
//! eval → matcher → grep — and `EXPERIMENTS.md` for the reproduction
//! methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use semre_automata as automata;
pub use semre_core as core;
pub use semre_grep as grep;
pub use semre_oracle as oracle;
pub use semre_syntax as syntax;
pub use semre_workloads as workloads;

pub use semre_core::{DpMatcher, EvalReport, Matcher, MatcherConfig};
pub use semre_oracle::{
    BatchOracle, BatchSession, BatchStats, CachingOracle, ConstOracle, Instrumented, LatencyModel,
    Oracle, PalindromeOracle, PredicateOracle, QueryKey, QueryLedger, SetOracle, SimLlmOracle,
    TableOracle,
};
pub use semre_syntax::{parse, skeleton, CharClass, ParseSemreError, QueryName, Semre};
