//! The compiled-pattern handle: a `regex`-style API over the SemRE engine.
//!
//! [`SemRegex`] packages the whole pipeline — parse → ⊥-elimination →
//! Thompson construction → ε-feasibility closure → gadget topology — into
//! one reusable handle holding the compiled SNFA and an
//! `Arc<dyn Oracle>`.  Handles are `Clone + Send + Sync`: cloning shares
//! the oracle and duplicates only the compiled automata, so a pattern is
//! elaborated once and used from many threads.
//!
//! Three questions can be asked of a haystack:
//!
//! * [`is_match`](SemRegex::is_match) — whole-input membership, the
//!   paper's `w ∈ ⟦r⟧` (note: *anchored*, unlike `regex::Regex`);
//! * [`find`](SemRegex::find) / [`find_iter`](SemRegex::find_iter) —
//!   unanchored span search with leftmost-earliest semantics;
//! * [`shortest_match`](SemRegex::shortest_match) — the first position at
//!   which some span is known to match.

use std::ops::Range;
use std::sync::Arc;

use semre_core::{DpMatcher, Matcher, MatcherConfig, SearchKind, SuspendedMatch};
use semre_oracle::{BatchSession, Oracle, ResolverPool};
use semre_syntax::{eliminate_bot, parse, Semre};

use crate::Error;

/// Default number of lines per batch-session chunk for scanning tools.
pub const DEFAULT_CHUNK_LINES: usize = 256;

/// Default number of bytes per I/O chunk for streaming scans
/// ([`SemRegex::scan_reader`], `grepo --stream`).
pub const DEFAULT_STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// A compiled semantic regular expression bound to an oracle.
///
/// Built with [`SemRegex::new`] or a [`SemRegexBuilder`]; cheap to clone
/// and shareable across threads without re-elaboration.
///
/// # Examples
///
/// ```
/// use semre::{SemRegex, SimLlmOracle};
///
/// let re = SemRegex::new(
///     r"Subject: .*(?<Medicine name>: [a-z]+)",
///     SimLlmOracle::new(),
/// )?;
/// let line = b"fwd: Subject: cheap tramadol today";
/// let m = re.find(line).expect("span found");
/// assert_eq!(m.as_bytes(), b"Subject: cheap tramadol");
/// assert!(re.is_match(m.as_bytes()));
/// # Ok::<(), semre::Error>(())
/// ```
#[derive(Clone)]
pub struct SemRegex {
    pattern: String,
    semre: Semre,
    engine: Engine,
    config: MatcherConfig,
    chunk_lines: usize,
    threads: usize,
    stream_chunk_bytes: usize,
    /// Background resolver pool for the overlapped oracle plane; present
    /// when built with [`SemRegexBuilder::overlapped`].  Clones share it.
    pool: Option<Arc<ResolverPool>>,
}

#[derive(Clone)]
enum Engine {
    Snfa(Box<Matcher<Arc<dyn Oracle>>>),
    Dp(DpMatcher<Arc<dyn Oracle>>),
}

impl SemRegex {
    /// Compiles `pattern` against `oracle` with the default configuration
    /// (query-graph matcher, batched oracle plane, all optimizations).
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] for malformed patterns, [`Error::Elaboration`] if
    /// the compiled SNFA is structurally invalid.
    pub fn new<O: Oracle + 'static>(pattern: &str, oracle: O) -> Result<SemRegex, Error> {
        SemRegexBuilder::new().build(pattern, oracle)
    }

    /// Like [`new`](SemRegex::new), for an oracle that is already shared.
    pub fn new_shared(pattern: &str, oracle: Arc<dyn Oracle>) -> Result<SemRegex, Error> {
        SemRegexBuilder::new().build_shared(pattern, oracle)
    }

    /// A builder for non-default configurations (per-call plane, DP
    /// baseline, chunk size).
    pub fn builder() -> SemRegexBuilder {
        SemRegexBuilder::new()
    }

    /// The concrete syntax this handle was compiled from (pretty-printed
    /// when built from a [`Semre`] value).
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The compiled (⊥-eliminated) SemRE.
    pub fn semre(&self) -> &Semre {
        &self.semre
    }

    /// The shared oracle backend.
    pub fn oracle(&self) -> &Arc<dyn Oracle> {
        match &self.engine {
            Engine::Snfa(m) => m.oracle(),
            Engine::Dp(m) => m.oracle(),
        }
    }

    /// The matcher configuration in effect.
    pub fn config(&self) -> MatcherConfig {
        self.config
    }

    /// Which algorithm answers queries: `"snfa"` (query graph) or `"dp"`
    /// (dynamic-programming baseline).
    pub fn algorithm(&self) -> &'static str {
        match &self.engine {
            Engine::Snfa(_) => "snfa",
            Engine::Dp(_) => "dp",
        }
    }

    /// The preferred number of lines per batch-session chunk for scanning
    /// tools (see [`SemRegexBuilder::chunk_lines`]).
    pub fn chunk_lines(&self) -> usize {
        self.chunk_lines
    }

    /// The preferred number of worker threads for scanning tools built on
    /// this handle (see [`SemRegexBuilder::threads`]); `1` means
    /// sequential.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The preferred I/O chunk size in bytes for streaming scans (see
    /// [`SemRegexBuilder::stream_chunk_bytes`]).
    pub fn stream_chunk_bytes(&self) -> usize {
        self.stream_chunk_bytes
    }

    /// Whether the whole `haystack` belongs to `⟦r⟧`.
    ///
    /// This is the paper's membership test — **anchored** at both ends,
    /// unlike `regex::Regex::is_match`.  Use [`find`](SemRegex::find) to
    /// search for a matching span inside the haystack.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        match &self.engine {
            Engine::Snfa(m) => m.is_match(haystack),
            Engine::Dp(m) => m.is_match(haystack),
        }
    }

    /// Like [`is_match`](SemRegex::is_match), resolving oracle questions
    /// through `session` so answers are shared with every other test using
    /// it (e.g. the other lines of a grep chunk).
    pub fn is_match_in_session(&self, haystack: &[u8], session: &mut BatchSession<'_>) -> bool {
        match &self.engine {
            Engine::Snfa(m) => m.run_in_session(haystack, session).matched,
            Engine::Dp(m) => m.run_in_session(haystack, session).matched,
        }
    }

    /// The leftmost-earliest matching span: among all spans
    /// `haystack[start..end] ∈ ⟦r⟧`, the one with the smallest start and,
    /// for that start, the smallest end.
    ///
    /// Note the *earliest* (shortest) tie-break: SemRE matching has no
    /// greedy/lazy distinction, so a nullable pattern matches the empty
    /// span at position 0.
    pub fn find<'h>(&self, haystack: &'h [u8]) -> Option<Match<'h>> {
        self.find_at(haystack, 0)
    }

    /// Like [`find`](SemRegex::find), but only considering spans starting
    /// at or after `start`.
    pub fn find_at<'h>(&self, haystack: &'h [u8], start: usize) -> Option<Match<'h>> {
        let mut session = self.session();
        self.find_at_in_session(haystack, start, &mut session)
    }

    /// Like [`find_at`](SemRegex::find_at), resolving oracle questions
    /// through `session` (used by [`find_iter`](SemRegex::find_iter) so the
    /// successive suffix searches share answers).
    pub fn find_at_in_session<'h>(
        &self,
        haystack: &'h [u8],
        start: usize,
        session: &mut BatchSession<'_>,
    ) -> Option<Match<'h>> {
        if start > haystack.len() {
            return None;
        }
        let suffix = &haystack[start..];
        let span = match &self.engine {
            Engine::Snfa(m) => {
                if self.config.batched_oracle {
                    m.search_in_session(suffix, SearchKind::Leftmost, session)
                        .span
                } else {
                    // The per-call plane routes every question straight to
                    // the backend, as the paper's prototype would.
                    m.search(suffix, SearchKind::Leftmost).span
                }
            }
            Engine::Dp(m) => {
                if self.config.batched_oracle {
                    m.find_in_session(suffix, session)
                } else {
                    m.find_per_call(suffix)
                }
            }
        };
        span.map(|(s, e)| Match {
            haystack,
            start: start + s,
            end: start + e,
        })
    }

    /// An iterator over successive non-overlapping leftmost-earliest
    /// matches.  One [`BatchSession`] spans the whole iteration, so on the
    /// batched plane oracle questions repeated across spans reach the
    /// backend once; a handle built with
    /// [`per_call`](SemRegexBuilder::per_call) bypasses the session on both
    /// engines and re-asks the backend on every suffix search, as the
    /// paper's prototype would.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h [u8]) -> Matches<'r, 'h> {
        Matches {
            re: self,
            haystack,
            session: self.session(),
            at: 0,
            done: false,
        }
    }

    /// The end of the earliest-ending matching span — the first position at
    /// which some span of `haystack` is known to match — or `None` when no
    /// span matches.
    pub fn shortest_match(&self, haystack: &[u8]) -> Option<usize> {
        match &self.engine {
            Engine::Snfa(m) => m.shortest_match(haystack),
            Engine::Dp(m) => {
                if self.config.batched_oracle {
                    m.shortest_match(haystack)
                } else {
                    m.shortest_match_per_call(haystack)
                }
            }
        }
    }

    /// A fresh [`BatchSession`] over this handle's oracle: session-scoped
    /// answer reuse for many membership tests or searches (one session per
    /// grep chunk, per `find_iter`, …).
    pub fn session(&self) -> BatchSession<'_> {
        match &self.engine {
            Engine::Snfa(m) => m.session(),
            Engine::Dp(m) => m.session(),
        }
    }

    /// The background resolver pool, when this handle was built with
    /// [`SemRegexBuilder::overlapped`].  Scan drivers use it to wait for
    /// progress between re-evaluation rounds and to read the resolver
    /// counters.
    pub fn resolver_pool(&self) -> Option<&Arc<ResolverPool>> {
        self.pool.as_ref()
    }

    /// A fresh [`BatchSession`] wired to the resolver pool: straggler
    /// flushes are submitted to the pool instead of blocking, and a test
    /// whose answers are still in flight suspends (see
    /// [`try_is_match_in_session`](SemRegex::try_is_match_in_session)).
    /// `None` when the handle is not overlapped (or uses the DP baseline,
    /// which always resolves synchronously).
    pub fn overlapped_session(&self) -> Option<BatchSession<'_>> {
        let pool = self.pool.as_deref()?;
        match &self.engine {
            Engine::Snfa(m) => Some(m.session_with_pool(pool)),
            Engine::Dp(_) => None,
        }
    }

    /// Like [`is_match_in_session`](SemRegex::is_match_in_session), but
    /// suspension-aware: `None` means the verdict depends on oracle
    /// answers still in flight on the resolver pool — park the input,
    /// [`wait_for_progress`](ResolverPool::wait_for_progress), and replay
    /// (replays are cheap: resolved answers come from the answer store).
    /// Always `Some` on a synchronous session.
    pub fn try_is_match_in_session(
        &self,
        haystack: &[u8],
        session: &mut BatchSession<'_>,
    ) -> Option<bool> {
        match &self.engine {
            Engine::Snfa(m) => {
                let report = m.run_in_session(haystack, session);
                if report.suspended {
                    None
                } else {
                    Some(report.matched)
                }
            }
            Engine::Dp(m) => Some(m.run_in_session(haystack, session).matched),
        }
    }

    /// Like [`try_is_match_in_session`](SemRegex::try_is_match_in_session),
    /// but a suspension returns the parked evaluation state
    /// ([`SuspendedMatch`]) so the caller resumes from the suspended
    /// position with [`resume_is_match`](SemRegex::resume_is_match) instead
    /// of replaying the whole line.  This is what the scan drivers use:
    /// parked lines cost `O(|w|)` evaluator work across all resumptions.
    /// Synchronous sessions and the DP baseline never suspend.
    pub fn try_is_match_suspending(
        &self,
        haystack: &[u8],
        session: &mut BatchSession<'_>,
    ) -> Result<bool, SuspendedMatch> {
        match &self.engine {
            Engine::Snfa(m) => m
                .try_run_in_session(haystack, session)
                .map(|report| report.matched),
            Engine::Dp(m) => Ok(m.run_in_session(haystack, session).matched),
        }
    }

    /// Continues an evaluation parked by
    /// [`try_is_match_suspending`](SemRegex::try_is_match_suspending), from
    /// the position that suspended it.  `haystack` must be the line the
    /// evaluation was parked on, and `session` must resolve through the
    /// same resolver pool; re-suspends (with updated state) when the next
    /// needed answers are still in flight.
    pub fn resume_is_match(
        &self,
        parked: SuspendedMatch,
        haystack: &[u8],
        session: &mut BatchSession<'_>,
    ) -> Result<bool, SuspendedMatch> {
        match &self.engine {
            Engine::Snfa(m) => m
                .resume_run_in_session(parked, haystack, session)
                .map(|report| report.matched),
            // The DP baseline never suspends, so it can never have produced
            // `parked`; answer synchronously rather than panic on misuse.
            Engine::Dp(m) => Ok(m.run_in_session(haystack, session).matched),
        }
    }
}

impl std::fmt::Debug for SemRegex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemRegex")
            .field("pattern", &self.pattern)
            .field("algorithm", &self.algorithm())
            .field("oracle", &self.oracle().describe())
            .field("config", &self.config)
            .finish()
    }
}

impl std::fmt::Display for SemRegex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern)
    }
}

/// Configures and builds [`SemRegex`] handles.
///
/// ```
/// use semre::{SemRegexBuilder, SetOracle};
///
/// let mut cities = SetOracle::new();
/// cities.insert("City", "Paris");
/// let re = SemRegexBuilder::new()
///     .per_call()          // paper-prototype oracle plane
///     .build(r"(?<City>: [A-Z][a-z]+)", cities)?;
/// assert!(re.is_match(b"Paris"));
/// # Ok::<(), semre::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct SemRegexBuilder {
    config: MatcherConfig,
    baseline: bool,
    chunk_lines: usize,
    threads: usize,
    stream_chunk_bytes: usize,
}

impl Default for SemRegexBuilder {
    fn default() -> Self {
        SemRegexBuilder {
            config: MatcherConfig::default(),
            baseline: false,
            chunk_lines: DEFAULT_CHUNK_LINES,
            threads: 1,
            stream_chunk_bytes: DEFAULT_STREAM_CHUNK_BYTES,
        }
    }
}

impl SemRegexBuilder {
    /// A builder with the default configuration: query-graph matcher, all
    /// optimizations, batched oracle plane, 256-line chunks.
    pub fn new() -> Self {
        SemRegexBuilder::default()
    }

    /// Replaces the whole matcher configuration (prefilter, pruning, lazy
    /// discharge, plane).
    pub fn matcher_config(mut self, config: MatcherConfig) -> Self {
        self.config = config;
        self
    }

    /// Routes oracle questions through the batched, deduplicating query
    /// plane (`true`, the default) or one `holds` call at a time.
    pub fn batched(mut self, batched: bool) -> Self {
        self.config.batched_oracle = batched;
        self
    }

    /// Shorthand for `batched(false)`: the per-call plane of the paper's
    /// prototype.
    pub fn per_call(self) -> Self {
        self.batched(false)
    }

    /// Enables the overlapped oracle plane with `threads` background
    /// resolver workers (clamped to at least 1; `0` disables overlap, the
    /// default).  The built handle owns a [`ResolverPool`]; scans through
    /// it suspend lines whose answers are in flight and keep scanning,
    /// hiding backend latency while producing byte-identical output.
    /// Implies the batched plane and is ignored by the DP baseline.
    pub fn overlapped(mut self, threads: usize) -> Self {
        self.config.oracle_threads = threads;
        if threads > 0 {
            self.config.batched_oracle = true;
        }
        self
    }

    /// Bounds the overlapped plane's queued-plus-in-flight oracle keys
    /// (`0` = the pool's default window).  Only meaningful together with
    /// [`overlapped`](SemRegexBuilder::overlapped).
    pub fn in_flight(mut self, window: usize) -> Self {
        self.config.in_flight = window;
        self
    }

    /// Enables or disables the literal prescan (`true`, the default): the
    /// length / first-byte / required-literal screens run in front of the
    /// skeleton DFA and skip all matching work on lines that cannot
    /// contain a match.  Verdicts are identical either way.
    pub fn prescan(mut self, prescan: bool) -> Self {
        self.config.literal_prescan = prescan;
        self
    }

    /// Uses the dynamic-programming baseline (the SMORE-style `O(|r||w|³)`
    /// algorithm) instead of the query-graph matcher.
    pub fn dp_baseline(mut self, baseline: bool) -> Self {
        self.baseline = baseline;
        self
    }

    /// Preferred lines per batch-session chunk for scanning tools built on
    /// this handle (clamped to at least 1; `grepo` honours it).
    pub fn chunk_lines(mut self, lines: usize) -> Self {
        self.chunk_lines = lines.max(1);
        self
    }

    /// Preferred number of worker threads for scanning tools built on this
    /// handle (clamped to at least 1; `grepo --threads` overrides it).
    /// Parallel scans fan chunks out across workers, each with its own
    /// batch session, and reassemble results in line order — verdicts and
    /// output are identical to a sequential scan.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Preferred I/O chunk size in bytes for streaming scans built on this
    /// handle (clamped to at least 1; `grepo --stream-chunk-bytes`
    /// overrides it).  Smaller chunks bound memory more tightly; larger
    /// chunks amortize read calls.  Lines longer than a chunk are handled
    /// correctly regardless — the chunker grows its carry buffer until a
    /// newline arrives.
    pub fn stream_chunk_bytes(mut self, bytes: usize) -> Self {
        self.stream_chunk_bytes = bytes.max(1);
        self
    }

    /// Parses `pattern` and compiles it against `oracle`.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] or [`Error::Elaboration`].
    pub fn build<O: Oracle + 'static>(self, pattern: &str, oracle: O) -> Result<SemRegex, Error> {
        self.build_shared(pattern, Arc::new(oracle))
    }

    /// Parses `pattern` and compiles it against a shared oracle.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] or [`Error::Elaboration`].
    pub fn build_shared(self, pattern: &str, oracle: Arc<dyn Oracle>) -> Result<SemRegex, Error> {
        let semre = parse(pattern)?;
        self.compile(pattern.to_owned(), semre, oracle)
    }

    /// Compiles an already-parsed [`Semre`] (e.g. one of the benchmark
    /// expressions) against `oracle`.
    ///
    /// # Errors
    ///
    /// [`Error::Elaboration`].
    pub fn build_semre<O: Oracle + 'static>(
        self,
        semre: Semre,
        oracle: O,
    ) -> Result<SemRegex, Error> {
        self.build_semre_shared(semre, Arc::new(oracle))
    }

    /// Compiles an already-parsed [`Semre`] against a shared oracle.
    ///
    /// # Errors
    ///
    /// [`Error::Elaboration`].
    pub fn build_semre_shared(
        self,
        semre: Semre,
        oracle: Arc<dyn Oracle>,
    ) -> Result<SemRegex, Error> {
        let pattern = semre.to_string();
        self.compile(pattern, semre, oracle)
    }

    fn compile(
        self,
        pattern: String,
        semre: Semre,
        oracle: Arc<dyn Oracle>,
    ) -> Result<SemRegex, Error> {
        // ⊥-elimination first (Section 3.1): the downstream constructions
        // assume ⊥-free input.
        let semre = eliminate_bot(&semre);
        // The resolver pool shares the oracle Arc with the engine, so a
        // question answered on either path lands in the same backend.
        let pool = if self.config.oracle_threads > 0 && self.config.batched_oracle && !self.baseline
        {
            Some(Arc::new(ResolverPool::new(
                oracle.clone(),
                self.config.oracle_threads,
                self.config.in_flight,
            )))
        } else {
            None
        };
        let engine = if self.baseline {
            Engine::Dp(DpMatcher::new(semre.clone(), oracle))
        } else {
            let matcher = Matcher::with_config(semre.clone(), oracle, self.config);
            matcher.snfa().validate().map_err(Error::Elaboration)?;
            Engine::Snfa(Box::new(matcher))
        };
        Ok(SemRegex {
            pattern,
            semre,
            engine,
            config: self.config,
            chunk_lines: self.chunk_lines,
            threads: self.threads,
            stream_chunk_bytes: self.stream_chunk_bytes,
            pool,
        })
    }
}

/// A matched span of the haystack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match<'h> {
    haystack: &'h [u8],
    start: usize,
    end: usize,
}

impl<'h> Match<'h> {
    /// Byte offset of the start of the span.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset one past the end of the span.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The span as a half-open byte range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The matched bytes.
    pub fn as_bytes(&self) -> &'h [u8] {
        &self.haystack[self.start..self.end]
    }

    /// The matched text, when it is valid UTF-8.
    pub fn as_str(&self) -> Option<&'h str> {
        std::str::from_utf8(self.as_bytes()).ok()
    }

    /// Where a non-overlapping iteration resumes after this match: `end()`,
    /// or `end() + 1` after an empty match so iteration always advances.
    /// [`find_iter`](SemRegex::find_iter) and the grep engine's span scan
    /// share this rule.
    pub fn next_search_start(&self) -> usize {
        if self.is_empty() {
            self.end + 1
        } else {
            self.end
        }
    }
}

/// Iterator over the successive non-overlapping leftmost-earliest matches
/// in a haystack, returned by [`SemRegex::find_iter`].
///
/// After a match `[s, e)` the search resumes at `e` (or `e + 1` after an
/// empty match, so iteration always advances).
pub struct Matches<'r, 'h> {
    re: &'r SemRegex,
    haystack: &'h [u8],
    session: BatchSession<'r>,
    at: usize,
    done: bool,
}

impl<'h> Iterator for Matches<'_, 'h> {
    type Item = Match<'h>;

    fn next(&mut self) -> Option<Match<'h>> {
        if self.done {
            return None;
        }
        match self
            .re
            .find_at_in_session(self.haystack, self.at, &mut self.session)
        {
            Some(m) => {
                self.at = m.next_search_start();
                Some(m)
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

impl std::iter::FusedIterator for Matches<'_, '_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use semre_oracle::{Instrumented, PalindromeOracle, SetOracle, SimLlmOracle};

    fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    #[test]
    fn handles_are_clone_send_sync() {
        assert_send_sync_clone::<SemRegex>();
        let re = SemRegex::new("a+", PalindromeOracle).unwrap();
        let clone = re.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || assert!(clone.is_match(b"aa")));
            scope.spawn(|| assert!(!re.is_match(b"b")));
        });
    }

    #[test]
    fn parse_and_elaboration_errors_surface() {
        let err = SemRegex::new("(unclosed", PalindromeOracle).unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        assert!(err.to_string().contains("offset"));
    }

    #[test]
    fn find_iter_yields_non_overlapping_spans_in_order() {
        let mut oracle = SetOracle::new();
        oracle.insert("Medicine name", "tramadol");
        oracle.insert("Medicine name", "ambien");
        let re = SemRegex::new(r"(?<Medicine name>: [a-z]+)", oracle).unwrap();
        let line = b"take tramadol or ambien daily";
        let spans: Vec<(usize, usize)> = re.find_iter(line).map(|m| (m.start(), m.end())).collect();
        assert_eq!(spans, vec![(5, 13), (17, 23)]);
        assert_eq!(&line[5..13], b"tramadol");
        let mut last_end = 0;
        for (s, e) in spans {
            assert!(s >= last_end, "overlap");
            assert!(re.is_match(&line[s..e]));
            last_end = e.max(s + 1);
        }
    }

    #[test]
    fn find_iter_terminates_on_nullable_patterns() {
        let re = SemRegex::new("a*", PalindromeOracle).unwrap();
        let spans: Vec<(usize, usize)> =
            re.find_iter(b"ba").map(|m| (m.start(), m.end())).collect();
        // Leftmost-earliest semantics: a nullable pattern yields the empty
        // span at every position.
        assert_eq!(spans, vec![(0, 0), (1, 1), (2, 2)]);
        let mut it = re.find_iter(b"ba");
        it.by_ref().count();
        assert!(it.next().is_none(), "fused after exhaustion");
    }

    #[test]
    fn dp_baseline_engine_answers_like_the_query_graph() {
        let re = SemRegex::new(r"(?<Medicine name>: [a-z]+)!", SimLlmOracle::new()).unwrap();
        let dp = SemRegexBuilder::new()
            .dp_baseline(true)
            .build(r"(?<Medicine name>: [a-z]+)!", SimLlmOracle::new())
            .unwrap();
        assert_eq!(re.algorithm(), "snfa");
        assert_eq!(dp.algorithm(), "dp");
        for line in [&b"buy xanax! now"[..], b"no meds here", b"ambien!"] {
            assert_eq!(re.is_match(line), dp.is_match(line), "{line:?}");
            assert_eq!(
                re.find(line).map(|m| m.range()),
                dp.find(line).map(|m| m.range()),
                "{line:?}"
            );
            assert_eq!(re.shortest_match(line), dp.shortest_match(line));
        }
    }

    #[test]
    fn sessions_absorb_repeated_questions_across_calls() {
        let backend = Arc::new(Instrumented::new(SimLlmOracle::new()));
        let re =
            SemRegex::new_shared(r"Subject: (?<Medicine name>: [a-z]+)", backend.clone()).unwrap();
        let mut session = re.session();
        let before = backend.stats().calls;
        assert!(re.is_match_in_session(b"Subject: viagra", &mut session));
        let first = backend.stats().calls - before;
        assert!(re.is_match_in_session(b"Subject: viagra", &mut session));
        assert_eq!(
            backend.stats().calls - before,
            first,
            "second identical line must be answered from the session"
        );
    }

    #[test]
    fn builder_knobs_are_recorded() {
        let re = SemRegexBuilder::new()
            .per_call()
            .chunk_lines(0)
            .build("ab", PalindromeOracle)
            .unwrap();
        assert!(!re.config().batched_oracle);
        assert_eq!(re.chunk_lines(), 1);
        assert_eq!(re.pattern(), "ab");
        assert_eq!(re.to_string(), "ab");
        assert_eq!(re.find(b"xxabxx").unwrap().range(), 2..4);

        // ⊥-elimination happens during compilation.
        let bot = SemRegex::new("[]a|b", PalindromeOracle).unwrap();
        assert!(!bot.semre().contains_bot());
        assert!(bot.is_match(b"b"));
    }

    #[test]
    fn match_accessors() {
        let re = SemRegex::new("b+", PalindromeOracle).unwrap();
        let hay = b"aabbaa";
        let m = re.find(hay).unwrap();
        assert_eq!((m.start(), m.end()), (2, 3));
        assert_eq!(m.range(), 2..3);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.as_bytes(), b"b");
        assert_eq!(m.as_str(), Some("b"));
    }
}
