//! The unified facade error type.

use std::fmt;

use semre_automata::SnfaInvariantError;
use semre_syntax::ParseSemreError;

/// Everything that can go wrong while compiling or using a
/// [`SemRegex`](crate::SemRegex) handle, so facade results compose with `?`.
///
/// The variants mirror the compilation pipeline: the pattern may fail to
/// *parse*, the parsed SemRE may fail to *elaborate* into a well-formed
/// semantic NFA, and an *oracle* backend may fail to be constructed (e.g. a
/// `set:` file that cannot be read).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The pattern's concrete syntax is malformed.  The inner
    /// [`ParseSemreError`] carries the byte offset of the problem, which
    /// `Display` preserves.
    Parse(ParseSemreError),
    /// The compiled semantic NFA violates a structural invariant.
    Elaboration(SnfaInvariantError),
    /// An oracle backend could not be built or reached.
    Oracle(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // ParseSemreError's Display includes "… at offset N".
            Error::Parse(e) => write!(f, "invalid pattern: {e}"),
            Error::Elaboration(e) => write!(f, "elaboration failed: {e}"),
            Error::Oracle(message) => write!(f, "oracle error: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Elaboration(e) => Some(e),
            Error::Oracle(_) => None,
        }
    }
}

impl From<ParseSemreError> for Error {
    fn from(e: ParseSemreError) -> Self {
        Error::Parse(e)
    }
}

impl From<SnfaInvariantError> for Error {
    fn from(e: SnfaInvariantError) -> Self {
        Error::Elaboration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_errors_carry_their_byte_offset_through_display() {
        let parse_error = semre_syntax::parse("ab(cd").unwrap_err();
        let offset = parse_error.offset();
        let error: Error = parse_error.into();
        let shown = error.to_string();
        assert!(
            shown.contains(&format!("offset {offset}")),
            "offset lost in {shown:?}"
        );
        assert!(error.source().is_some());
    }

    #[test]
    fn oracle_errors_display_their_message() {
        let error = Error::Oracle("no such backend".to_owned());
        assert_eq!(error.to_string(), "oracle error: no such backend");
        assert!(std::error::Error::source(&error).is_none());
    }

    #[test]
    fn question_mark_composes() {
        fn compile(pattern: &str) -> Result<semre_syntax::Semre, Error> {
            Ok(semre_syntax::parse(pattern)?)
        }
        assert!(compile("a|b").is_ok());
        assert!(matches!(compile("a|("), Err(Error::Parse(_))));
    }
}
