//! Span-search correctness on the nine benchmark SemREs of Table 1.
//!
//! Deterministic property tests (vendored SplitMix64 sampling, no external
//! dependencies) checking that:
//!
//! * `SemRegex::find` agrees with the brute-force oracle — the
//!   leftmost-earliest `(start, end)` over all substrings accepted by
//!   anchored `is_match` — on every benchmark SemRE;
//! * `find_iter` produces identical span sequences on the batched and
//!   per-call oracle planes, non-overlapping and in leftmost order, with
//!   every span individually satisfying `is_match`.
//!
//! Lines are truncated: the brute force is quadratic in line length on top
//! of the matcher's own cost, and equivalence on short prefixes is just as
//! binding.

use std::sync::Arc;

use semre::{SemRegex, SemRegexBuilder};
use semre_workloads::rng::StdRng;
use semre_workloads::{BenchSpec, Workbench};

/// The leftmost-earliest matching span by definition: scan starts
/// ascending, ends ascending, return the first substring `is_match`
/// accepts.
fn brute_force_find(re: &SemRegex, line: &[u8]) -> Option<(usize, usize)> {
    for start in 0..=line.len() {
        for end in start..=line.len() {
            if re.is_match(&line[start..end]) {
                return Some((start, end));
            }
        }
    }
    None
}

/// A deterministic sample of corpus lines for `spec`, truncated to
/// `max_len` bytes (the corpora are ASCII): up to `positives` lines whose
/// truncation still matches `probe` whole-line (so every benchmark
/// contributes real spans), padded with random picks.
fn sample_lines(
    workbench: &Workbench,
    spec: &BenchSpec,
    probe: &SemRegex,
    rng: &mut StdRng,
    positives: usize,
    count: usize,
    max_len: usize,
) -> Vec<Vec<u8>> {
    let corpus = workbench.corpus(spec.dataset);
    let lines = corpus.lines();
    let truncate = |line: &String| line.as_bytes()[..line.len().min(max_len)].to_vec();
    let mut sample: Vec<Vec<u8>> = lines
        .iter()
        .map(truncate)
        .filter(|line| probe.is_match(line))
        .take(positives)
        .collect();
    while sample.len() < count && !lines.is_empty() {
        let index = rng.gen_range(0..lines.len());
        sample.push(truncate(&lines[index]));
    }
    sample
}

#[test]
fn find_agrees_with_brute_force_on_the_bench_set() {
    let workbench = Workbench::generate(0x5EED, 300, 300);
    let mut rng = StdRng::seed_from_u64(0x5EED_F19D);
    let mut spans_found = 0usize;
    for spec in workbench.benchmarks() {
        let re = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .expect("benchmark SemREs compile");
        for line in sample_lines(&workbench, &spec, &re, &mut rng, 2, 6, 28) {
            let expected = brute_force_find(&re, &line);
            let got = re.find(&line).map(|m| (m.start(), m.end()));
            assert_eq!(
                got,
                expected,
                "{}: find disagrees with brute force on {:?}",
                spec.name,
                String::from_utf8_lossy(&line)
            );
            if let Some((start, end)) = got {
                assert!(
                    re.is_match(&line[start..end]),
                    "{}: reported span does not satisfy is_match",
                    spec.name
                );
                spans_found += 1;
            }
        }
    }
    assert!(
        spans_found > 0,
        "the sample should contain at least one positive span"
    );
}

#[test]
fn find_iter_is_identical_across_planes_on_the_bench_set() {
    let workbench = Workbench::generate(0xB0B, 300, 300);
    let mut rng = StdRng::seed_from_u64(0xB0B_17E4);
    let mut total_spans = 0usize;
    for spec in workbench.benchmarks() {
        let batched = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .unwrap();
        let per_call = SemRegexBuilder::new()
            .per_call()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .unwrap();
        for line in sample_lines(&workbench, &spec, &batched, &mut rng, 3, 7, 60) {
            let batched_spans: Vec<(usize, usize)> = batched
                .find_iter(&line)
                .map(|m| (m.start(), m.end()))
                .collect();
            let per_call_spans: Vec<(usize, usize)> = per_call
                .find_iter(&line)
                .map(|m| (m.start(), m.end()))
                .collect();
            assert_eq!(
                batched_spans,
                per_call_spans,
                "{}: planes disagree on {:?}",
                spec.name,
                String::from_utf8_lossy(&line)
            );

            // Non-overlapping, in leftmost order, each span a member.
            let mut next_valid_start = 0usize;
            for &(start, end) in &batched_spans {
                assert!(
                    start >= next_valid_start,
                    "{}: overlapping or out-of-order span ({start}, {end})",
                    spec.name
                );
                assert!(
                    batched.is_match(&line[start..end]),
                    "{}: span ({start}, {end}) fails is_match on {:?}",
                    spec.name,
                    String::from_utf8_lossy(&line)
                );
                next_valid_start = end.max(start + 1);
            }
            total_spans += batched_spans.len();
        }
    }
    assert!(total_spans > 0, "the sample should contain positive spans");
}

#[test]
fn shortest_match_never_ends_after_find() {
    let workbench = Workbench::generate(0xCAFE, 200, 200);
    let mut rng = StdRng::seed_from_u64(0xCAFE_0123);
    for spec in workbench.benchmarks() {
        let re = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .unwrap();
        for line in sample_lines(&workbench, &spec, &re, &mut rng, 2, 4, 32) {
            let found = re.find(&line).map(|m| m.end());
            let shortest = re.shortest_match(&line);
            assert_eq!(found.is_some(), shortest.is_some(), "{}", spec.name);
            if let (Some(found_end), Some(shortest_end)) = (found, shortest) {
                assert!(
                    shortest_end <= found_end,
                    "{}: shortest_match ended after find ({shortest_end} vs {found_end})",
                    spec.name
                );
            }
        }
    }
}
