//! The paper's worked examples, reproduced end to end.
//!
//! Each test corresponds to a concrete example, figure, or note in the
//! paper and checks the behaviour the text describes.

use semre::{ConstOracle, Instrumented, Matcher, Oracle, PalindromeOracle, SetOracle};
use semre_syntax::examples;

/// Section 2.2: the introduction's sportsperson / scientist oracle.
#[test]
fn section_2_2_team_rosters() {
    let mut oracle = SetOracle::new();
    oracle.insert_all(
        "Sportsperson",
        ["Simone Biles", "Lionel Messi", "Roger Federer"],
    );
    // (⟨Sportsperson⟩ ", ")* ⟨Sportsperson⟩ — rosters of sports teams.
    let roster = semre::parse(r"((?<Sportsperson>: .*), )*(?<Sportsperson>: .*)").unwrap();
    let matcher = Matcher::new(roster, oracle);
    assert!(matcher.is_match(b"Simone Biles, Lionel Messi, Roger Federer"));
    assert!(matcher.is_match(b"Lionel Messi"));
    assert!(!matcher.is_match(b"Simone Biles, Isaac Newton"));
    assert!(!matcher.is_match(b"Simone Biles; Lionel Messi"));
}

/// Figures 2–4: the palindrome SemRE `Σ* a ⟨pal⟩` and the strings used to
/// motivate the query graph.
#[test]
fn figures_2_to_4_palindrome_walkthrough() {
    let matcher = Matcher::new(examples::r_pal(), PalindromeOracle);
    // w1 w3 = babc·cb ∈ ⟦r_pal⟧ (split after the `a`: "bccb" is a palindrome).
    assert!(matcher.is_match(b"babccb"));
    // w2 w3 = bacb·cb ∉ ⟦r_pal⟧.
    assert!(!matcher.is_match(b"bacbcb"));
    // w4 w3 = babca·cb ∈ ⟦r_pal⟧ via the *first* occurrence of `a` (Fig. 3):
    // the suffix "bcacb" is a palindrome while "cb" is not.
    assert!(matcher.is_match(b"babcacb"));
}

/// Figure 5: `(Σ* ∧ ⟨q⟩)*` accepts exactly the strings that can be cut into
/// oracle-accepted chunks (Equation 12).
#[test]
fn figure_5_chunked_acceptance() {
    let mut oracle = SetOracle::new();
    oracle.insert_all("q", ["ab", "c", "abc"]);
    let matcher = Matcher::new(examples::r_qstar("q"), oracle);
    assert!(matcher.is_match(b"abc")); // "abc" or "ab"+"c"
    assert!(matcher.is_match(b"cababc")); // "c"+"ab"+"abc" among others
    assert!(matcher.is_match(b"")); // zero chunks
    assert!(!matcher.is_match(b"ba"));
    assert!(!matcher.is_match(b"abx"));
}

/// The introduction's nested "Paris Hilton" SemRE: celebrities whose names
/// contain city names.
#[test]
fn introduction_paris_hilton() {
    let mut oracle = SetOracle::new();
    oracle.insert_all("City", ["Paris", "London"]);
    oracle.insert_all(
        "Celebrity",
        ["Paris Hilton", "London Breed", "Taylor Swift"],
    );
    let matcher = Matcher::new(examples::r_paris_hilton(), oracle);
    assert!(matcher.is_match(b"Paris Hilton"));
    assert!(matcher.is_match(b"London Breed"));
    assert!(!matcher.is_match(b"Taylor Swift")); // celebrity, no city inside
    assert!(!matcher.is_match(b"Paris Fashion Week")); // city, not a celebrity
}

/// Note 2.1 / Example 2.8: the `⟨q⟩` and `[q]` shorthands differ on the
/// empty substring.
#[test]
fn note_2_1_shorthands() {
    let mut oracle = SetOracle::new();
    oracle.insert("q", "");
    oracle.insert("q", "x");
    // ⟨q⟩ = Σ* ∧ ⟨q⟩ accepts ε when the oracle does.
    assert!(Matcher::new(semre_syntax::Semre::oracle("q"), &oracle).is_match(b""));
    // [q] = Σ⁺ ∧ ⟨q⟩ never accepts ε.
    assert!(!Matcher::new(semre_syntax::Semre::oracle_word("q"), &oracle).is_match(b""));
    assert!(Matcher::new(semre_syntax::Semre::oracle_word("q"), &oracle).is_match(b"x"));
}

/// Note 4.2: for `(Σ ∧ ⟨q⟩) Σ*` a single oracle query (on the first
/// character) suffices, despite the general Ω(|w|²) lower bound.
#[test]
fn note_4_2_single_query_suffices_for_anchored_refinements() {
    let oracle = Instrumented::new(ConstOracle::always_true());
    let r = semre::parse("(?<q>: .).*").unwrap();
    let matcher = Matcher::new(r, &oracle);
    let input = vec![b'x'; 64];
    assert!(matcher.is_match(&input));
    assert_eq!(
        matcher.oracle().stats().calls,
        1,
        "only ⟦q⟧(w₁) needs to be consulted for (Σ ∧ ⟨q⟩)Σ*"
    );
}

/// Theorem 4.1 (proof): the two oracles ⟦·⟧_f and ⟦·⟧_t differ on a single
/// `(q, 0^j 1^k)` pair and force different verdicts.
#[test]
fn theorem_4_1_adversarial_oracles() {
    use semre_workloads::query_complexity::{lower_bound_input, lower_bound_semre};
    let r = lower_bound_semre(1);
    let w = lower_bound_input(4);
    let always_false = ConstOracle::always_false();
    let spiky = semre::PredicateOracle::new(|q: &str, text: &[u8]| q == "q1" && text == b"0011");
    assert!(!Matcher::new(r.clone(), always_false).is_match(&w));
    assert!(Matcher::new(r, spiky).is_match(&w));
}

/// Example 2.7 / Table 1: the identifier SemRE only flags whole identifiers
/// on word boundaries (thanks to the pad₁ / pad₂ padding).
#[test]
fn example_2_7_identifier_boundaries() {
    let oracle = semre::SimLlmOracle::new();
    let matcher = Matcher::new(examples::r_id_padded(), &oracle);
    assert!(matcher.is_match(b"int tmp = readValue();"));
    assert!(matcher.is_match(b"foo"));
    assert!(!matcher.is_match(b"int temperature = readValue();"));
    // "tmp" inside a longer identifier is not a word-boundary occurrence.
    assert!(!matcher.is_match(b"int tmpBufferSize = 4096;"));
}

/// Example 2.9–2.11: the non-LLM oracles behave like their services.
#[test]
fn examples_2_9_to_2_11_service_oracles() {
    let mut whois = semre::oracle::WhoisDb::new();
    whois.register("example.com", 1995);
    whois.register("fresh.dev", 2021);
    let matcher = Matcher::new(examples::r_edom(), &whois);
    assert!(matcher.is_match(b"bob@forgotten.zzz"));
    assert!(!matcher.is_match(b"not an email address"));

    let recent = Matcher::new(examples::r_wdom2(), &whois);
    assert!(recent.is_match(b"https://fresh.dev"));
    assert!(!recent.is_match(b"ftp://fresh.dev"));

    let geo = semre::oracle::IpGeoDb::with_private_ranges();
    let ip_matcher = Matcher::new(examples::r_ip(), &geo);
    assert!(ip_matcher.is_match(b"8.8.8.8"));
    assert!(!ip_matcher.is_match(b"192.168.1.20"));
    assert!(!ip_matcher.is_match(b"999.1.2.3"));
}

/// Assumption 2.4: wrapping a nondeterministic oracle in the cache makes
/// repeated matching deterministic.
#[test]
fn assumption_2_4_cache_determinizes() {
    use std::sync::atomic::{AtomicU64, Ordering};
    // A deliberately nondeterministic oracle: flips its answer every call.
    struct Flaky(AtomicU64);
    impl Oracle for Flaky {
        fn holds(&self, _query: &str, _text: &[u8]) -> bool {
            self.0.fetch_add(1, Ordering::Relaxed) % 2 == 0
        }
    }
    let cached = semre::CachingOracle::new(Flaky(AtomicU64::new(0)));
    let matcher = Matcher::new(semre::parse("(?<q>: abc)").unwrap(), &cached);
    let first = matcher.is_match(b"abc");
    for _ in 0..5 {
        assert_eq!(
            matcher.is_match(b"abc"),
            first,
            "cached answers must not change"
        );
    }
}
