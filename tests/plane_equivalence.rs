//! Equivalence of the three execution paths on the nine benchmark SemREs:
//!
//! * `Matcher` on the batched query plane (the default),
//! * `Matcher` on the per-call plane (the paper's prototype behaviour),
//! * `DpMatcher`, the dynamic-programming baseline,
//!
//! including the batch-plane accounting invariants the refactor promises:
//! the batched plane issues exactly the per-call plane's logical requests,
//! and the ledger resolves at most as many unique keys as the per-call
//! plane issues calls.

use std::sync::Arc;

use semre::{DpMatcher, Matcher, MatcherConfig};
use semre_workloads::Workbench;

/// A corpus sample small enough for the cubic DP baseline.
fn sample_lines(workbench: &Workbench, spec: &semre_workloads::BenchSpec) -> Vec<String> {
    workbench
        .corpus(spec.dataset)
        .truncated_to(100)
        .lines()
        .iter()
        .take(80)
        .cloned()
        .collect()
}

#[test]
fn batched_per_call_and_dp_agree_on_the_bench_set() {
    let workbench = Workbench::generate(20250613, 400, 400);
    for spec in workbench.benchmarks() {
        let lines = sample_lines(&workbench, &spec);
        let batched = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
        let per_call = Matcher::with_config(
            spec.semre.clone(),
            Arc::clone(&spec.oracle),
            MatcherConfig::per_call(),
        );
        let dp = DpMatcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));

        let mut matched_lines = 0;
        for line in &lines {
            let b = batched.run(line.as_bytes());
            let p = per_call.run(line.as_bytes());
            let d = dp.run(line.as_bytes());
            assert_eq!(
                b.matched, p.matched,
                "{}: batched and per-call planes disagree on {line:?}",
                spec.name
            );
            assert_eq!(
                b.matched, d.matched,
                "{}: query-graph and DP matchers disagree on {line:?}",
                spec.name
            );
            assert_eq!(
                b.oracle_calls, p.oracle_calls,
                "{}: the planes must issue identical logical requests on {line:?}",
                spec.name
            );
            assert!(
                b.unique_keys <= p.oracle_calls,
                "{}: ledger resolved {} unique keys, per-call issued {} calls on {line:?}",
                spec.name,
                b.unique_keys,
                p.oracle_calls
            );
            assert!(
                b.batches <= b.unique_keys.max(1),
                "{}: more round trips than resolved keys on {line:?}",
                spec.name
            );
            matched_lines += usize::from(b.matched);
        }
        assert!(
            matched_lines > 0,
            "{}: sample contains no positives",
            spec.name
        );
        assert!(
            matched_lines < lines.len(),
            "{}: sample contains no negatives",
            spec.name
        );
    }
}

#[test]
fn shared_sessions_preserve_verdicts_on_the_bench_set() {
    let workbench = Workbench::generate(77, 300, 300);
    for spec in workbench.benchmarks() {
        let lines = sample_lines(&workbench, &spec);
        let matcher = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));

        let independent: Vec<bool> = lines
            .iter()
            .map(|l| matcher.is_match(l.as_bytes()))
            .collect();

        let mut session = matcher.session();
        let mut shared = Vec::with_capacity(lines.len());
        let mut unique_keys = 0;
        let mut logical_requests = 0;
        for line in &lines {
            let report = matcher.run_in_session(line.as_bytes(), &mut session);
            shared.push(report.matched);
            unique_keys += report.unique_keys;
            logical_requests += report.oracle_calls;
        }
        assert_eq!(
            shared, independent,
            "{}: chunk session changed verdicts",
            spec.name
        );

        let stats = session.stats();
        assert_eq!(
            stats.keys_submitted, unique_keys,
            "{}: the session sees exactly the ledgers' unique keys",
            spec.name
        );
        assert!(
            stats.backend_keys <= unique_keys,
            "{}: content dedup cannot increase keys",
            spec.name
        );
        assert!(logical_requests >= unique_keys, "{}", spec.name);
    }
}

#[test]
fn dp_baseline_sessions_never_increase_backend_traffic() {
    use semre::Instrumented;
    let workbench = Workbench::generate(9, 200, 200);
    for name in ["spam,1", "ip", "file"] {
        let spec = workbench.benchmark(name).expect("bench set row");
        let lines = sample_lines(&workbench, &spec);
        let lines: Vec<&String> = lines.iter().take(30).collect();

        let backend = Instrumented::new(Arc::clone(&spec.oracle));
        let dp = DpMatcher::new(spec.semre.clone(), &backend);

        let before = backend.stats().calls;
        let independent: Vec<bool> = lines.iter().map(|l| dp.is_match(l.as_bytes())).collect();
        let per_call_calls = backend.stats().calls - before;

        let before = backend.stats().calls;
        let mut session = dp.session();
        let shared: Vec<bool> = lines
            .iter()
            .map(|l| dp.run_in_session(l.as_bytes(), &mut session).matched)
            .collect();
        let session_calls = backend.stats().calls - before;

        assert_eq!(shared, independent, "{name}: session changed DP verdicts");
        assert!(
            session_calls <= per_call_calls,
            "{name}: session increased backend traffic ({session_calls} vs {per_call_calls})"
        );
    }
}
