//! Differential suite for the streaming scan pipeline and the literal
//! prescan.
//!
//! The perf work of PR 4 must never change a verdict or a printed byte:
//!
//! * `grepo --stream` (chunked I/O, lines reassembled across chunk
//!   boundaries) must produce byte-identical output to the in-memory
//!   path, for every chunk size, thread count, and benchmark SemRE;
//! * the literal prescan must agree with the prescan-free matcher on
//!   every verdict;
//! * chunk-boundary pathologies — lines exactly at, spanning, and larger
//!   than `stream_chunk_bytes`, empty trailing lines, a missing final
//!   newline — must not lose, duplicate, or alter a line.

use std::sync::Arc;

use semre::core::MatcherConfig;
use semre::workloads::rng::StdRng;
use semre::workloads::Workbench;
use semre::{SemRegex, SemRegexBuilder};
use semre_grep::cli::{run_on_text, run_stream, CliOptions};
use semre_grep::stream::{scan_stream, StreamOptions};
use semre_grep::{scan_batched, ScanOptions};

/// A corpus engineered around the chunk boundary: for chunk size `c`,
/// lines of length exactly `c - 1` (so line + `\n` fills a chunk), `c`,
/// `c + 1`, several multiples of `c`, empty lines (including a run of
/// trailing empty lines), and an unterminated final line.
fn boundary_text(chunk: usize, final_newline: bool) -> String {
    let mut text = String::new();
    let keyword = "Subject: cheap viagra";
    for (i, len) in [
        chunk.saturating_sub(1),
        chunk,
        chunk + 1,
        2 * chunk,
        3 * chunk + 1,
        1,
        0,
        chunk / 2,
        0,
        0,
    ]
    .into_iter()
    .enumerate()
    {
        let mut line = if i % 2 == 0 {
            keyword.to_string()
        } else {
            String::from("filler")
        };
        while line.len() < len {
            line.push('x');
        }
        line.truncate(len);
        text.push_str(&line);
        text.push('\n');
    }
    if final_newline {
        text.push_str("Subject: final tramadol line\n");
    } else {
        text.push_str("Subject: final tramadol line");
    }
    text
}

#[test]
fn chunk_boundary_lines_are_never_lost_or_altered() {
    let re = SemRegex::new(
        r"Subject: .*(?<Medicine name>: [a-z]+).*",
        semre::SimLlmOracle::new(),
    )
    .unwrap();
    for chunk in [1usize, 2, 16, 21, 22, 23, 64] {
        for final_newline in [true, false] {
            let text = boundary_text(chunk, final_newline);
            let lines: Vec<&str> = text.lines().collect();
            let expected: Vec<(Vec<u8>, bool)> = lines
                .iter()
                .map(|l| (l.as_bytes().to_vec(), re.is_match(l.as_bytes())))
                .collect();
            for threads in [1, 4] {
                let options = StreamOptions {
                    chunk_bytes: chunk,
                    chunk_lines: 4,
                    threads,
                    batched: true,
                    // Exercise both the double-buffered and the plain
                    // reader across the chunk-size sweep.
                    read_ahead: chunk % 2 == 0,
                    scan: ScanOptions::unlimited(),
                };
                let mut got = Vec::new();
                let report = scan_stream(&re, text.as_bytes(), &options, |i, line, m| {
                    assert_eq!(i as usize, got.len(), "line order broken");
                    got.push((line.to_vec(), m));
                    true
                })
                .unwrap();
                assert_eq!(
                    got, expected,
                    "chunk={chunk} threads={threads} final_newline={final_newline}"
                );
                assert_eq!(report.lines as usize, lines.len());
                assert_eq!(report.bytes as usize, text.len());
            }
        }
    }
}

#[test]
fn streaming_is_byte_identical_on_all_nine_benchmarks() {
    let workbench = Workbench::generate(0x57_4EA4, 400, 400);
    for spec in workbench.benchmarks() {
        let re = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .expect("benchmark SemREs compile");
        let corpus = workbench.corpus(spec.dataset);
        let lines: Vec<&String> = corpus.lines().iter().take(250).collect();
        let text: String = lines
            .iter()
            .map(|l| format!("{l}\n"))
            .collect::<Vec<_>>()
            .join("");

        // The in-memory reference: what grepo's --no-stream path prints.
        let reference = scan_batched(&re, &lines, 64, ScanOptions::unlimited());
        let mut expected = Vec::new();
        for record in reference.records.iter().filter(|r| r.matched) {
            expected.extend_from_slice(lines[record.index].as_bytes());
            expected.push(b'\n');
        }

        for chunk_bytes in [37, 64 * 1024] {
            for threads in [1, 4] {
                let options = StreamOptions {
                    chunk_bytes,
                    chunk_lines: 64,
                    threads,
                    batched: true,
                    read_ahead: true,
                    scan: ScanOptions::unlimited(),
                };
                let mut got = Vec::new();
                scan_stream(&re, text.as_bytes(), &options, |_, line, matched| {
                    if matched {
                        got.extend_from_slice(line);
                        got.push(b'\n');
                    }
                    true
                })
                .unwrap();
                assert_eq!(
                    String::from_utf8_lossy(&got),
                    String::from_utf8_lossy(&expected),
                    "{}: chunk={chunk_bytes} threads={threads}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn prescan_never_changes_a_verdict_on_benchmarks_or_random_input() {
    let workbench = Workbench::generate(0x9E_5CA4, 300, 300);
    let mut rng = StdRng::seed_from_u64(0x9E5);
    let structured: &[u8] = b"abz09AZ.:/@-_\" (),<>Subject: htp";
    let random: Vec<Vec<u8>> = (0..80)
        .map(|i| {
            let len = rng.gen_range(0..60usize);
            (0..len)
                .map(|_| match i % 2 {
                    0 => rng.gen_range(0..256u32) as u8,
                    _ => structured[rng.gen_range(0..structured.len())],
                })
                .collect()
        })
        .collect();
    for spec in workbench.benchmarks() {
        let with = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .unwrap();
        let without = SemRegexBuilder::new()
            .matcher_config(MatcherConfig::no_prescan())
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .unwrap();
        let corpus = workbench.corpus(spec.dataset);
        for line in corpus.lines().iter().take(120) {
            assert_eq!(
                with.is_match(line.as_bytes()),
                without.is_match(line.as_bytes()),
                "{}: corpus line {line:?}",
                spec.name
            );
        }
        for input in &random {
            assert_eq!(
                with.is_match(input),
                without.is_match(input),
                "{}: random input {input:?}",
                spec.name
            );
            assert_eq!(
                with.find(input).map(|m| m.range()),
                without.find(input).map(|m| m.range()),
                "{}: random find {input:?}",
                spec.name
            );
        }
    }
}

#[test]
fn cli_stream_agrees_with_cli_in_memory_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(4242);
    let meds = ["viagra", "tramadol", "xanax", "ambien"];
    let mut lines = Vec::new();
    for i in 0..150 {
        if rng.gen_bool(0.35) {
            let med = meds[rng.gen_range(0..meds.len())];
            lines.push(format!("Subject: cheap {med} deal number {i}"));
        } else if rng.gen_bool(0.5) {
            lines.push(format!("Subject: weekly report number {i}"));
        } else {
            lines.push(format!("unrelated chatter line {i}"));
        }
    }
    let text = lines.join("\n") + "\n";
    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";

    for threads in ["1", "4"] {
        let base = ["--batched", "--threads", threads, pattern];
        let in_memory = CliOptions::parse(base.iter().copied().chain(["--no-stream"])).unwrap();
        let expected = run_on_text(&in_memory, &text).unwrap();
        let mut expected_bytes = Vec::new();
        for line in &expected.stdout {
            expected_bytes.extend_from_slice(line.as_bytes());
            expected_bytes.push(b'\n');
        }
        for chunk in ["1", "53", "65536"] {
            let streaming = CliOptions::parse(
                ["--stream-chunk-bytes", chunk]
                    .into_iter()
                    .chain(base.iter().copied()),
            )
            .unwrap();
            let mut got = Vec::new();
            let outcome = run_stream(&streaming, text.as_bytes(), &mut got).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&got),
                String::from_utf8_lossy(&expected_bytes),
                "threads={threads} chunk={chunk}"
            );
            assert_eq!(outcome.exit_code, expected.exit_code);
        }
    }
}

/// A reader that synthesizes a large corpus on the fly, so the test can
/// stream far more data than it ever holds: the streaming path's memory
/// is bounded by O(chunk + longest line) by construction (LineChunks
/// carries only the split remainder), and this exercises that path at a
/// scale where materializing would be wasteful.
struct SyntheticCorpus {
    line: u64,
    lines: u64,
    pending: Vec<u8>,
}

impl std::io::Read for SyntheticCorpus {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            if self.line >= self.lines {
                return Ok(0);
            }
            let i = self.line;
            self.pending = if i % 97 == 0 {
                format!("Subject: cheap viagra offer number {i}\n").into_bytes()
            } else {
                format!("plain filler line number {i} with some padding text\n").into_bytes()
            };
            self.line += 1;
        }
        let n = self.pending.len().min(buf.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

#[test]
fn streaming_a_synthetic_corpus_stays_incremental() {
    // ~400k lines, ~20 MB, generated on the fly; the scan sees every line
    // exactly once and counts exactly the planted matches.
    let lines = 400_000u64;
    let re = SemRegex::new(
        r"Subject: .*(?<Medicine name>: [a-z]+).*",
        semre::SimLlmOracle::new(),
    )
    .unwrap();
    let options = StreamOptions {
        chunk_bytes: 64 * 1024,
        chunk_lines: 256,
        threads: 4,
        batched: true,
        read_ahead: true,
        scan: ScanOptions::unlimited(),
    };
    let reader = SyntheticCorpus {
        line: 0,
        lines,
        pending: Vec::new(),
    };
    let mut matched = 0u64;
    let report = scan_stream(&re, reader, &options, |_, _, m| {
        if m {
            matched += 1;
        }
        true
    })
    .unwrap();
    assert_eq!(report.lines, lines);
    assert_eq!(matched, lines.div_ceil(97));
    assert_eq!(report.matched_lines, matched);
    assert!(report.bytes > 10_000_000, "{} bytes", report.bytes);
}
