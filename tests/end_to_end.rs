//! Cross-crate integration tests: the full pipeline from concrete syntax
//! through oracles, corpora, matching, and the grep engine.

use std::sync::Arc;

use semre::grep::{scan, scan_parallel, ScanOptions};
use semre::{
    CachingOracle, DpMatcher, Instrumented, LatencyModel, Matcher, MatcherConfig, Oracle,
    SimLlmOracle,
};
use semre_workloads::{Dataset, Workbench};

#[test]
fn both_algorithms_agree_on_a_corpus_sample() {
    let workbench = Workbench::generate(123, 400, 400);
    for spec in workbench.benchmarks() {
        let corpus = workbench.corpus(spec.dataset).truncated_to(120);
        let lines: Vec<&String> = corpus.lines().iter().take(120).collect();
        let snfa = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
        let dp = DpMatcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
        for line in lines {
            assert_eq!(
                snfa.is_match(line.as_bytes()),
                dp.is_match(line.as_bytes()),
                "{}: algorithms disagree on {line:?}",
                spec.name
            );
        }
    }
}

#[test]
fn matcher_configurations_agree_on_membership() {
    let workbench = Workbench::generate(321, 200, 200);
    let spec = workbench.benchmark("edom").expect("edom exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(150);
    let default = Matcher::new(spec.semre.clone(), Arc::clone(&spec.oracle));
    let eager = Matcher::with_config(
        spec.semre.clone(),
        Arc::clone(&spec.oracle),
        MatcherConfig::eager(),
    );
    for line in corpus.lines().iter().take(150) {
        assert_eq!(
            default.is_match(line.as_bytes()),
            eager.is_match(line.as_bytes())
        );
    }
}

#[test]
fn caching_reduces_oracle_traffic_without_changing_answers() {
    let workbench = Workbench::generate(55, 300, 0);
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(120);

    let raw = Instrumented::new(Arc::clone(&spec.oracle));
    let uncached_matcher = Matcher::new(spec.semre.clone(), &raw);
    let uncached_hits: Vec<bool> = corpus
        .lines()
        .iter()
        .map(|l| uncached_matcher.is_match(l.as_bytes()))
        .collect();

    let backend = Instrumented::new(Arc::clone(&spec.oracle));
    let cached = CachingOracle::new(&backend);
    let cached_matcher = Matcher::new(spec.semre.clone(), &cached);
    let cached_hits: Vec<bool> = corpus
        .lines()
        .iter()
        .map(|l| cached_matcher.is_match(l.as_bytes()))
        .collect();

    assert_eq!(uncached_hits, cached_hits);
    assert!(
        backend.stats().calls < raw.stats().calls,
        "the cache should absorb repeated (query, substring) pairs ({} vs {})",
        backend.stats().calls,
        raw.stats().calls
    );
    assert!(cached.hits() > 0);
}

#[test]
fn grep_engine_matches_cli_outcome() {
    let oracle = SimLlmOracle::new();
    let pattern = r"Subject: .*(?<Medicine name>: .+).*";
    let matcher = Matcher::new(semre::parse(pattern).unwrap(), &oracle);
    let lines = vec![
        "Subject: cheap adderall pills".to_owned(),
        "Subject: faculty meeting".to_owned(),
        "unrelated line".to_owned(),
    ];
    let report = scan(
        &matcher,
        &lines,
        semre::oracle::OracleStats::default,
        ScanOptions::unlimited(),
    );
    assert_eq!(report.matched_lines(), 1);

    let parallel = scan_parallel(&matcher, &lines, 3);
    assert_eq!(parallel.matched_lines(), 1);

    let options = semre::grep::cli::CliOptions::parse(["--count", pattern]).expect("valid options");
    let outcome =
        semre::grep::cli::run_on_text(&options, &lines.join("\n")).expect("cli run succeeds");
    assert_eq!(outcome.stdout, vec!["1".to_owned()]);
}

#[test]
fn latency_model_shows_up_in_oracle_fraction() {
    let workbench = Workbench::generate(77, 250, 0);
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(100);
    let oracle = Instrumented::with_spun_latency(Arc::clone(&spec.oracle), LatencyModel::llm());
    let matcher = Matcher::new(spec.semre.clone(), &oracle);
    let report = scan(
        &matcher,
        corpus.lines(),
        || oracle.stats(),
        ScanOptions::unlimited(),
    );
    // With a (scaled) LLM-like latency injected, matching time is dominated
    // by the oracle, as in the paper's LLM-backed rows of Table 2.
    assert!(
        report.oracle_fraction() > 0.5,
        "expected an oracle-dominated run, fraction = {}",
        report.oracle_fraction()
    );
}

#[test]
fn skeleton_prefilter_spares_the_oracle_entirely_on_clean_corpora() {
    // A corpus with no `Subject:` lines never needs the medicine oracle.
    let lines: Vec<String> = (0..50)
        .map(|i| format!("ordinary log line number {i} with no e-mail headers"))
        .collect();
    let oracle = Instrumented::new(SimLlmOracle::new());
    let matcher = Matcher::new(
        semre::parse(r"Subject: .*(?<Medicine name>: .+).*").unwrap(),
        &oracle,
    );
    let report = scan(
        &matcher,
        &lines,
        || oracle.stats(),
        ScanOptions::unlimited(),
    );
    assert_eq!(report.matched_lines(), 0);
    assert_eq!(report.oracle_totals().calls, 0);
}

#[test]
fn facade_reexports_are_usable_together() {
    // Build an oracle stack exactly like the paper's LLM setup and drive it
    // through the facade's re-exports only.
    let stack = CachingOracle::new(Instrumented::with_latency(
        SimLlmOracle::new(),
        LatencyModel::llm(),
    ));
    assert!(stack.holds("Medicine name", b"cialis"));
    let r = semre::parse("(?<Medicine name>: [a-z]+)").unwrap();
    assert!(semre::skeleton(&r).is_classical());
    let matcher = Matcher::new(r, stack);
    assert!(matcher.is_match(b"cialis"));
    assert!(!matcher.is_match(b"42"));
}
