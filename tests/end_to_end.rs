//! Cross-crate integration tests: the full pipeline from concrete syntax
//! through oracles, corpora, matching, and the grep engine — driven
//! through the `semre` facade wherever a user would be.

use std::sync::Arc;

use semre::{
    CachingOracle, Instrumented, LatencyModel, MatcherConfig, Oracle, SemRegex, SemRegexBuilder,
    SimLlmOracle,
};
use semre_grep::{scan, scan_parallel, ScanOptions};
use semre_workloads::{Dataset, Workbench};

#[test]
fn both_algorithms_agree_on_a_corpus_sample() {
    let workbench = Workbench::generate(123, 400, 400);
    for spec in workbench.benchmarks() {
        let corpus = workbench.corpus(spec.dataset).truncated_to(120);
        let lines: Vec<&String> = corpus.lines().iter().take(120).collect();
        let snfa = SemRegexBuilder::new()
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .expect("benchmark SemREs compile");
        let dp = SemRegexBuilder::new()
            .dp_baseline(true)
            .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
            .expect("benchmark SemREs compile");
        for line in lines {
            assert_eq!(
                snfa.is_match(line.as_bytes()),
                dp.is_match(line.as_bytes()),
                "{}: algorithms disagree on {line:?}",
                spec.name
            );
        }
    }
}

#[test]
fn matcher_configurations_agree_on_membership() {
    let workbench = Workbench::generate(321, 200, 200);
    let spec = workbench.benchmark("edom").expect("edom exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(150);
    let default = SemRegexBuilder::new()
        .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
        .unwrap();
    let eager = SemRegexBuilder::new()
        .matcher_config(MatcherConfig::eager())
        .build_semre_shared(spec.semre.clone(), Arc::clone(&spec.oracle))
        .unwrap();
    for line in corpus.lines().iter().take(150) {
        assert_eq!(
            default.is_match(line.as_bytes()),
            eager.is_match(line.as_bytes())
        );
    }
}

#[test]
fn caching_reduces_oracle_traffic_without_changing_answers() {
    let workbench = Workbench::generate(55, 300, 0);
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(120);

    let raw = Arc::new(Instrumented::new(Arc::clone(&spec.oracle)));
    let uncached = SemRegexBuilder::new()
        .per_call()
        .build_semre_shared(spec.semre.clone(), raw.clone())
        .unwrap();
    let uncached_hits: Vec<bool> = corpus
        .lines()
        .iter()
        .map(|l| uncached.is_match(l.as_bytes()))
        .collect();

    let backend = Arc::new(Instrumented::new(Arc::clone(&spec.oracle)));
    let cached_stack = Arc::new(CachingOracle::new(backend.clone()));
    let cached = SemRegexBuilder::new()
        .per_call()
        .build_semre_shared(spec.semre.clone(), cached_stack.clone())
        .unwrap();
    let cached_hits: Vec<bool> = corpus
        .lines()
        .iter()
        .map(|l| cached.is_match(l.as_bytes()))
        .collect();

    assert_eq!(uncached_hits, cached_hits);
    assert!(
        backend.stats().calls < raw.stats().calls,
        "the cache should absorb repeated (query, substring) pairs ({} vs {})",
        backend.stats().calls,
        raw.stats().calls
    );
    assert!(cached_stack.hits() > 0);
}

#[test]
fn grep_engine_matches_cli_outcome() {
    let pattern = r"Subject: .*(?<Medicine name>: .+).*";
    let re = SemRegex::new(pattern, SimLlmOracle::new()).unwrap();
    let lines = vec![
        "Subject: cheap adderall pills".to_owned(),
        "Subject: faculty meeting".to_owned(),
        "unrelated line".to_owned(),
    ];
    let report = scan(
        &re,
        &lines,
        semre::oracle::OracleStats::default,
        ScanOptions::unlimited(),
    );
    assert_eq!(report.matched_lines(), 1);

    let parallel = scan_parallel(&re, &lines, 3);
    assert_eq!(parallel.matched_lines(), 1);

    let options = semre_grep::cli::CliOptions::parse(["--count", pattern]).expect("valid options");
    let outcome =
        semre_grep::cli::run_on_text(&options, &lines.join("\n")).expect("cli run succeeds");
    assert_eq!(outcome.stdout, vec!["1".to_owned()]);
}

#[test]
fn cli_span_search_agrees_with_facade_find_iter() {
    let pattern = r"(?<Medicine name>: [a-z]+)";
    let text = "order tramadol now\nno meds\nambien ambien\n";
    let re = SemRegex::new(pattern, SimLlmOracle::new()).unwrap();
    let expected: Vec<String> = text
        .lines()
        .flat_map(|line| {
            re.find_iter(line.as_bytes())
                .map(|m| m.as_str().unwrap().to_owned())
                .collect::<Vec<_>>()
        })
        .collect();

    let options =
        semre_grep::cli::CliOptions::parse(["--only-matching", pattern]).expect("valid options");
    let outcome = semre_grep::cli::run_on_text(&options, text).expect("cli run succeeds");
    assert_eq!(outcome.stdout, expected);
    assert_eq!(expected, vec!["tramadol", "ambien", "ambien"]);
}

#[test]
fn latency_model_shows_up_in_oracle_fraction() {
    let workbench = Workbench::generate(77, 250, 0);
    let spec = workbench.benchmark("spam,1").expect("spam,1 exists");
    let corpus = workbench.corpus(Dataset::Spam).truncated_to(100);
    let oracle = Arc::new(Instrumented::with_spun_latency(
        Arc::clone(&spec.oracle),
        LatencyModel::llm(),
    ));
    let re = SemRegexBuilder::new()
        .per_call()
        .build_semre_shared(spec.semre.clone(), oracle.clone())
        .unwrap();
    let report = scan(
        &re,
        corpus.lines(),
        || oracle.stats(),
        ScanOptions::unlimited(),
    );
    // With a (scaled) LLM-like latency injected, matching time is dominated
    // by the oracle, as in the paper's LLM-backed rows of Table 2.
    assert!(
        report.oracle_fraction() > 0.5,
        "expected an oracle-dominated run, fraction = {}",
        report.oracle_fraction()
    );
}

#[test]
fn skeleton_prefilter_spares_the_oracle_entirely_on_clean_corpora() {
    // A corpus with no `Subject:` lines never needs the medicine oracle.
    let lines: Vec<String> = (0..50)
        .map(|i| format!("ordinary log line number {i} with no e-mail headers"))
        .collect();
    let oracle = Arc::new(Instrumented::new(SimLlmOracle::new()));
    let re = SemRegexBuilder::new()
        .per_call()
        .build_shared(r"Subject: .*(?<Medicine name>: .+).*", oracle.clone())
        .unwrap();
    let report = scan(&re, &lines, || oracle.stats(), ScanOptions::unlimited());
    assert_eq!(report.matched_lines(), 0);
    assert_eq!(report.oracle_totals().calls, 0);
}

#[test]
fn facade_reexports_are_usable_together() {
    // Build an oracle stack exactly like the paper's LLM setup and drive it
    // through the facade's re-exports only.
    let stack = CachingOracle::new(Instrumented::with_latency(
        SimLlmOracle::new(),
        LatencyModel::llm(),
    ));
    assert!(stack.holds("Medicine name", b"cialis"));
    let r = semre::parse("(?<Medicine name>: [a-z]+)").unwrap();
    assert!(semre::skeleton(&r).is_classical());
    let re = SemRegex::builder().build_semre(r, stack).unwrap();
    assert!(re.is_match(b"cialis"));
    assert!(!re.is_match(b"42"));
    assert_eq!(re.find(b"__cialis__").unwrap().as_bytes(), b"cialis");
}
