//! Differential suite for the lazy-DFA skeleton prefilter and the parallel
//! chunk scanner.
//!
//! The perf work of PR 3 must never change a verdict: the DFA prefilter
//! must agree with the classical NFA simulation byte for byte, and a
//! `--threads N` scan must produce byte-identical output to the sequential
//! scan.  Both properties are checked here on the nine benchmark SemREs
//! plus SplitMix64-sampled random inputs.

use semre::automata::{compile, skeleton_matches, LazyDfa};
use semre::syntax::{skeleton, Semre};
use semre::workloads::rng::StdRng;
use semre::workloads::Workbench;
use semre_grep::cli::{run_on_text, CliOptions};

/// Random byte strings over three alphabets: full binary, lowercase ASCII,
/// and the characters benchmark skeletons actually guard on.
fn random_inputs(rng: &mut StdRng, count: usize) -> Vec<Vec<u8>> {
    let structured: &[u8] = b"abz09AZ.:/@-_\" (),<>from:htp";
    (0..count)
        .map(|i| {
            let len = rng.gen_range(0..40usize);
            (0..len)
                .map(|_| match i % 3 {
                    0 => rng.gen_range(0..256u32) as u8,
                    1 => b'a' + rng.gen_range(0..26u32) as u8,
                    _ => structured[rng.gen_range(0..structured.len())],
                })
                .collect()
        })
        .collect()
}

#[test]
fn lazy_dfa_agrees_with_nfa_on_benchmark_skeletons() {
    let workbench = Workbench::generate(0xDF4, 300, 300);
    let mut rng = StdRng::seed_from_u64(0xDF4_5EED);
    let random = random_inputs(&mut rng, 120);
    for spec in workbench.benchmarks() {
        let skel = skeleton(&spec.semre);
        for (kind, snfa) in [
            ("skeleton", compile(&skel)),
            ("search skeleton", compile(&Semre::padded(skel.clone()))),
        ] {
            let dfa = LazyDfa::new(&snfa);
            let corpus = workbench.corpus(spec.dataset);
            for line in corpus.lines().iter().take(150) {
                assert_eq!(
                    dfa.matches(line.as_bytes()),
                    skeleton_matches(&snfa, line.as_bytes()),
                    "{} ({kind}): corpus line {line:?}",
                    spec.name
                );
            }
            for input in &random {
                assert_eq!(
                    dfa.matches(input),
                    skeleton_matches(&snfa, input),
                    "{} ({kind}): random input {input:?}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn lazy_dfa_agrees_on_adversarial_classical_patterns() {
    // Patterns whose determinization is non-trivial (state-set blowup,
    // overlapping classes, counters).
    let patterns = [
        "(a|b)*a(a|b)(a|b)(a|b)",
        "[a-p]*[g-z]+x?",
        "(ab|ba)*(a|)",
        ".*(ab|cd).*",
        "[0-9]{2,6}(-[0-9]{2,4})*",
    ];
    let mut rng = StdRng::seed_from_u64(77);
    let inputs = random_inputs(&mut rng, 200);
    for pattern in patterns {
        let snfa = compile(&semre::parse(pattern).unwrap());
        let dfa = LazyDfa::new(&snfa);
        for input in &inputs {
            assert_eq!(
                dfa.matches(input),
                skeleton_matches(&snfa, input),
                "{pattern} on {input:?}"
            );
        }
    }
}

/// Builds a corpus mixing matching and non-matching lines for the spam,1
/// pattern family.
fn grep_corpus() -> String {
    let mut rng = StdRng::seed_from_u64(42);
    let mut lines = Vec::new();
    let meds = ["viagra", "tramadol", "xanax", "ambien"];
    for i in 0..120 {
        if rng.gen_bool(0.4) {
            let med = meds[rng.gen_range(0..meds.len())];
            lines.push(format!("Subject: cheap {med} deal number {i}"));
        } else if rng.gen_bool(0.5) {
            lines.push(format!("Subject: weekly report number {i}"));
        } else {
            lines.push(format!("unrelated chatter line {i}"));
        }
    }
    lines.join("\n") + "\n"
}

fn outcome_for(args: &[&str], text: &str) -> (Vec<String>, i32) {
    let options = CliOptions::parse(args.iter().map(|s| s.to_string())).unwrap();
    let outcome = run_on_text(&options, text).unwrap();
    (outcome.stdout, outcome.exit_code)
}

#[test]
fn threaded_scans_produce_byte_identical_output() {
    let pattern = r"Subject: .*(?<Medicine name>: [a-z]+).*";
    let span_pattern = r"(?<Medicine name>: [a-z]+)";
    let text = grep_corpus();
    let modes: &[&[&str]] = &[
        &[pattern],
        &["--batched", pattern],
        &["--batched", "--chunk-lines", "7", pattern],
        &["--count", pattern],
        &["--only-matching", span_pattern],
        &["--only-matching", "--count", span_pattern],
    ];
    for mode in modes {
        let sequential = outcome_for(mode, &text);
        for threads in ["1", "2", "8"] {
            let mut args: Vec<&str> = vec!["--threads", threads];
            args.extend_from_slice(mode);
            let parallel = outcome_for(&args, &text);
            assert_eq!(
                parallel, sequential,
                "mode {mode:?} with --threads {threads} diverged"
            );
        }
    }
}

#[test]
fn builder_threads_preference_reaches_the_handle() {
    let re = semre::SemRegexBuilder::new()
        .threads(4)
        .build("a+", semre::PalindromeOracle)
        .unwrap();
    assert_eq!(re.threads(), 4);
    let default = semre::SemRegex::new("a+", semre::PalindromeOracle).unwrap();
    assert_eq!(default.threads(), 1);
    // Clamped, like chunk_lines.
    let clamped = semre::SemRegexBuilder::new()
        .threads(0)
        .build("a+", semre::PalindromeOracle)
        .unwrap();
    assert_eq!(clamped.threads(), 1);
}
